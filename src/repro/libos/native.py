"""The no-protection LibOS: plain syscalls into the primary OS.

Used by the baseline runs ("the same code compiled under the SDK
simulation mode", Sec 7.4): identical server logic, but every file and
socket operation is a normal syscall with no world switches.
"""

from __future__ import annotations

from repro.errors import OsError, SdkError
from repro.libos.base import Libos
from repro.osim.kernel import Kernel
from repro.osim.net import Loopback
from repro.osim.vfs import Vfs


class NativeLibos(Libos):
    """Syscall-backed LibOS for baseline servers."""

    def __init__(self, kernel: Kernel, loopback: Loopback, vfs: Vfs) -> None:
        self.kernel = kernel
        self.loopback = loopback
        self.vfs = vfs
        self._conns: dict[int, object] = {}
        self._next_id = 1

    # -- filesystem ------------------------------------------------------------

    def write_file(self, path: str, data: bytes) -> None:
        self.kernel.charge_syscall(400)
        self.vfs.write_file(path, data)

    def read_file(self, path: str) -> bytes:
        self.kernel.charge_syscall(400)
        return self.vfs.read_file(path)

    def stat(self, path: str) -> int:
        self.kernel.charge_syscall(250)
        return self.vfs.stat(path)

    def exists(self, path: str) -> bool:
        self.kernel.charge_syscall(250)
        return self.vfs.exists(path)

    # -- sockets -----------------------------------------------------------------

    def listen(self, port: int) -> None:
        self.kernel.charge_syscall(600)
        self.loopback.listen(port)

    def accept(self, port: int) -> int:
        self.kernel.charge_syscall(800)
        conn = self.loopback.accept(port)
        conn_id = self._next_id
        self._next_id += 1
        self._conns[conn_id] = conn
        return conn_id

    def connection(self, conn_id: int):
        connection = self._conns.get(conn_id)
        if connection is None:
            raise SdkError(f"unknown connection {conn_id}")
        return connection

    def recv(self, conn: int) -> bytes | None:
        self.kernel.charge_syscall(600)
        return self.loopback.recv(self.connection(conn), from_client=True)

    def send(self, conn: int, data: bytes) -> None:
        self.kernel.charge_syscall(600)
        self.loopback.send(self.connection(conn), data, from_client=False)

    def close(self, conn: int) -> None:
        self.kernel.charge_syscall(400)
        connection = self._conns.pop(conn, None)
        if connection is not None:
            connection.close()
