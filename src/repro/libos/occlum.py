"""The in-enclave LibOS (our Occlum port).

Files live in enclave memory: reads charge enclave-memory touches, so a
big file set exerts the same pressure on the LLC / encryption engine /
EPC as Occlum's in-enclave FS does.  Sockets turn into OCALLs; the
payload rides the marshalling buffer like any other edge-call parameter.
"""

from __future__ import annotations

from repro.errors import OsError, SdkError
from repro.libos.base import (LIBOS_SYSCALL_CYCLES, RECV_CAPACITY, Libos)
from repro.osim.net import Loopback


class _EnclaveFile:
    """One in-enclave file: bytes plus a charged address range."""

    def __init__(self, data: bytes, base_addr: int) -> None:
        self.data = data
        self.base_addr = base_addr


class OcclumLibos(Libos):
    """LibOS running inside the enclave, bound to an EnclaveContext."""

    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self._files: dict[str, _EnclaveFile] = {}

    def _syscall(self) -> None:
        # Occlum dispatches "syscalls" inside the enclave: no world switch.
        self.ctx.compute(LIBOS_SYSCALL_CYCLES)

    # -- filesystem ------------------------------------------------------------

    def write_file(self, path: str, data: bytes) -> None:
        self._syscall()
        base = self.ctx.malloc(max(len(data), 16))
        self.ctx.touch_sequential(base, len(data) or 1, write=True)
        self._files[path] = _EnclaveFile(bytes(data), base)

    def read_file(self, path: str) -> bytes:
        self._syscall()
        f = self._files.get(path)
        if f is None:
            raise OsError(f"no such file in LibOS: {path}")
        self.ctx.touch_sequential(f.base_addr, len(f.data) or 1)
        return f.data

    def stat(self, path: str) -> int:
        self._syscall()
        f = self._files.get(path)
        if f is None:
            raise OsError(f"no such file in LibOS: {path}")
        return len(f.data)

    def exists(self, path: str) -> bool:
        self._syscall()
        return path in self._files

    # -- sockets (OCALLs) ----------------------------------------------------------

    def listen(self, port: int) -> None:
        self._syscall()
        self.ctx.ocall("ocall_net_listen", port=port)

    def accept(self, port: int) -> int:
        self._syscall()
        return int(self.ctx.ocall("ocall_net_accept", port=port))

    def recv(self, conn: int) -> bytes | None:
        self._syscall()
        result = self.ctx.ocall("ocall_net_recv", cap=RECV_CAPACITY,
                                conn=conn)
        retval, outs = result if isinstance(result, tuple) else (result, {})
        n = int(retval)
        if n == 0:
            return None
        return outs["buf"][:n]

    def send(self, conn: int, data: bytes) -> None:
        self._syscall()
        self.ctx.ocall("ocall_net_send", data=data, n=len(data), conn=conn)

    def close(self, conn: int) -> None:
        self._syscall()
        self.ctx.ocall("ocall_net_close", conn=conn)


def register_libos_ocalls(handle, loopback: Loopback) -> dict[int, object]:
    """Install the untrusted halves of the LibOS socket OCALLs.

    Returns the connection registry (id -> Connection) so drivers can
    inject client traffic.
    """
    registry: dict[int, object] = {}
    next_id = [1]

    def ocall_net_listen(port):
        loopback.listen(int(port))
        return 0

    def ocall_net_accept(port):
        conn = loopback.accept(int(port))
        conn_id = next_id[0]
        next_id[0] += 1
        registry[conn_id] = conn
        return conn_id

    def ocall_net_recv(buf, cap, conn):
        connection = registry.get(int(conn))
        if connection is None:
            raise SdkError(f"recv on unknown connection {conn}")
        data = loopback.recv(connection, from_client=True)
        if data is None:
            return 0, {"buf": b""}
        if len(data) > cap:
            raise SdkError("LibOS recv capacity exceeded")
        return len(data), {"buf": data}

    def ocall_net_send(data, n, conn):
        connection = registry.get(int(conn))
        if connection is None:
            raise SdkError(f"send on unknown connection {conn}")
        loopback.send(connection, bytes(data[:n]), from_client=False)
        return n

    def ocall_net_close(conn):
        connection = registry.pop(int(conn), None)
        if connection is not None:
            connection.close()
        return 0

    handle.register_ocall("ocall_net_listen", ocall_net_listen)
    handle.register_ocall("ocall_net_accept", ocall_net_accept)
    handle.register_ocall("ocall_net_recv", ocall_net_recv)
    handle.register_ocall("ocall_net_send", ocall_net_send)
    handle.register_ocall("ocall_net_close", ocall_net_close)
    return registry
