"""LibOS layer (the ported Occlum of Sec 5.3 / 7.4).

Server workloads (Lighttpd, Redis) are written against the small POSIX-ish
:class:`~repro.libos.base.Libos` interface and run unchanged on two
implementations:

* :class:`~repro.libos.occlum.OcclumLibos` — inside the enclave: the
  filesystem lives in enclave memory (Occlum's encrypted FS), network I/O
  crosses the boundary as OCALLs through the marshalling buffer.
* :class:`~repro.libos.native.NativeLibos` — the no-protection baseline:
  plain syscalls into the primary OS.
"""

from repro.libos.base import Libos, LIBOS_EDL_UNTRUSTED
from repro.libos.occlum import OcclumLibos, register_libos_ocalls
from repro.libos.native import NativeLibos

__all__ = ["Libos", "LIBOS_EDL_UNTRUSTED", "OcclumLibos",
           "register_libos_ocalls", "NativeLibos"]
