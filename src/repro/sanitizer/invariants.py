"""The monitor-invariant checkers.

Single source of truth for the properties RustMonitor must uphold —
:meth:`~repro.monitor.rustmonitor.RustMonitor.audit_invariants` delegates
here, and the runtime sanitizer runs the scoped variants after every
monitor operation.  Message prefixes keep the legacy ``I-1``..``I-4``
names the paper-era auditor used, with a machine-checkable ``SAN-*`` code
on top (see :mod:`repro.sanitizer.violation`).

Every checker is read-only over simulated hardware: page tables are
walked through raw physical reads (never ``translate``), so no cycles are
charged, no TLB/LLC state moves, and no paging statistics shift.
"""

from __future__ import annotations

from repro.crypto.hashes import sha256
from repro.hw.paging import _ADDR_MASK, PageTableFlags
from repro.hw.phys import PAGE_SIZE, OwnerKind
from repro.sanitizer.shadow import render_owner
from repro.sanitizer.violation import (SAN_ALIAS, SAN_ELRANGE, SAN_MEASURE,
                                       SAN_NPT, SAN_OWNER, SAN_REACH,
                                       SAN_SHADOW, SAN_SWAP, SAN_TLB, SAN_WX,
                                       SanitizerViolation)

# Monitor ops whose after-op check walks the whole enclave (lifecycle
# changes) vs. ops hot enough that only the touched page is re-checked.
PAGE_SCOPED_OPS = frozenset({"page_fault", "swap_out", "swap_in"})


def fail(machine, san, code: str, message: str, *,
         frame: int | None = None) -> None:
    """Count the violation in the telemetry registry and raise it.

    When forensics are enabled (a flight recorder is active, or CI set
    ``REPRO_FORENSICS_DIR``) the violation also emits a forensic bundle
    capturing the machine state at the moment of failure; its path rides
    on the exception as ``forensic_bundle``.
    """
    machine.telemetry.registry.counter("sanitizer", "violations",
                                       code=code).inc()
    history = ()
    if san is not None:
        san.violations += 1
        if frame is not None:
            history = san.shadow.frame_history(frame)
    violation = SanitizerViolation(code, message, history)
    from repro.flightrec import forensics
    if forensics.emission_enabled():
        forensics.emit_for_machine(machine, violation)
    raise violation


# -- per-mapping checks: ownership (I-1), aliasing (I-2), W^X ---------------

def _check_mapping(monitor, san, eid: int, va: int, pa: int,
                   flags: PageTableFlags, ms_frames: set[int],
                   seen: dict[int, int] | None) -> None:
    machine = monitor.machine
    owner = machine.phys.owner_of(pa)
    frame = pa // PAGE_SIZE
    if pa in ms_frames:
        if owner.kind is not OwnerKind.NORMAL:
            fail(machine, san, SAN_OWNER,
                 f"I-1: enclave {eid} msbuf frame {pa:#x} is "
                 f"{owner.kind.value}", frame=frame)
        return
    if seen is not None:
        prev = seen.get(pa)
        if prev is not None and prev != eid:
            fail(machine, san, SAN_ALIAS,
                 f"I-2: frame {pa:#x} mapped by enclaves {prev} and {eid}",
                 frame=frame)
        seen[pa] = eid
    elif san is not None:
        mappers = san.shadow.frame_mappers.get(frame, ())
        for other in sorted(mappers):
            if other != eid:
                fail(machine, san, SAN_ALIAS,
                     f"I-2: frame {pa:#x} mapped by enclaves {other} "
                     f"and {eid}", frame=frame)
    if owner.kind is not OwnerKind.ENCLAVE or owner.enclave_id != eid:
        fail(machine, san, SAN_OWNER,
             f"I-1: enclave {eid} maps foreign frame {pa:#x} "
             f"({owner.kind.value})", frame=frame)
    if flags & PageTableFlags.WRITABLE and not flags & PageTableFlags.NX:
        fail(machine, san, SAN_WX,
             f"W^X: enclave {eid} mapping at {va:#x} -> {pa:#x} is both "
             f"writable and executable", frame=frame)


def check_enclave(monitor, enclave, san,
                  seen: dict[int, int] | None = None) -> None:
    """Walk one enclave's page table and committed-page map in full."""
    eid = enclave.enclave_id
    ms_frames = set(enclave.marshalling.frames) if enclave.marshalling \
        else set()
    for va, pa, flags in enclave.pt.mappings():
        _check_mapping(monitor, san, eid, va, pa, flags, ms_frames, seen)
    for page in enclave.pages.values():
        if not 0 <= page.offset < enclave.secs.size:
            fail(monitor.machine, san, SAN_ELRANGE,
                 f"I-4: enclave {eid} page offset {page.offset:#x} "
                 f"outside ELRANGE", frame=page.pa // PAGE_SIZE)


def _leaf_entry(pt, va: int) -> int | None:
    """Read one leaf PTE through raw physical memory (no side effects)."""
    entry_pa = pt._find_entry(va)
    if entry_pa is None:
        return None
    entry = pt.phys.read_u64(entry_pa)
    if not entry & PageTableFlags.PRESENT:
        return None
    return entry


def check_enclave_page(monitor, enclave, san, va: int) -> None:
    """The page-scoped variant run after hot ops (faults, swaps)."""
    eid = enclave.enclave_id
    page_va = va & ~(PAGE_SIZE - 1)
    page = enclave.page_at(page_va)
    if page is not None and not 0 <= page.offset < enclave.secs.size:
        fail(monitor.machine, san, SAN_ELRANGE,
             f"I-4: enclave {eid} page offset {page.offset:#x} outside "
             f"ELRANGE", frame=page.pa // PAGE_SIZE)
    entry = _leaf_entry(enclave.pt, page_va)
    if entry is None:
        return
    pa = entry & _ADDR_MASK
    flags = PageTableFlags(entry & ~_ADDR_MASK)
    ms_frames = set(enclave.marshalling.frames) if enclave.marshalling \
        else set()
    _check_mapping(monitor, san, eid, page_va, pa, flags, ms_frames, None)


# -- NPT coverage (I-3) ------------------------------------------------------

def check_npt(monitor, san) -> None:
    """I-3: the normal VM's NPT must never cover the reserved region."""
    cfg = monitor.machine.config
    for probe in (cfg.reserved_base,
                  cfg.reserved_base + cfg.reserved_size - PAGE_SIZE):
        if monitor.normal_npt.contains(probe):
            fail(monitor.machine, san, SAN_NPT,
                 f"I-3: normal VM NPT covers reserved frame {probe:#x}",
                 frame=probe // PAGE_SIZE)


# -- shadow-vs-real lockstep -------------------------------------------------

def check_lockstep(machine, san, *, full: bool = False) -> None:
    """Shadow ownership must mirror the real frame-owner table.

    Per-op, only frames dirtied since the last check are compared;
    ``full=True`` (audits) compares the entire table.
    """
    shadow = san.shadow
    real = machine.phys.owned_frames()
    if full:
        if real != shadow.owners:
            for frame in sorted(set(shadow.owners) | set(real)):
                if shadow.owners.get(frame) != real.get(frame):
                    fail(machine, san, SAN_SHADOW,
                         f"shadow divergence at frame {frame:#x}: real "
                         f"owner {_render(real.get(frame))}, shadow "
                         f"{_render(shadow.owners.get(frame))} — some "
                         f"code path bypassed set_owner", frame=frame)
        shadow.dirty.clear()
        return
    for frame in shadow.dirty:
        if shadow.owners.get(frame) != real.get(frame):
            fail(machine, san, SAN_SHADOW,
                 f"shadow divergence at frame {frame:#x}: real owner "
                 f"{_render(real.get(frame))}, shadow "
                 f"{_render(shadow.owners.get(frame))}", frame=frame)
    shadow.dirty.clear()


def _render(owner) -> str:
    return render_owner(owner) if owner is not None else "free"


# -- TLB coherence -----------------------------------------------------------

def check_pending_shootdowns(machine, san) -> None:
    """No TLB translation may outlive its page's unmap/protect.

    Every unmap/protect on an ASID-tagged page table records a pending
    shootdown that only an INVLPG/flush retires; any survivor at the end
    of a monitor op is a stale-translation hole (paper Sec 6).
    """
    pending = san.shadow.pending_shootdowns
    if not pending:
        return
    (asid, vpn), op = sorted(pending.items())[0]
    fail(machine, san, SAN_TLB,
         f"stale TLB translation: asid {asid} va {vpn * PAGE_SIZE:#x} was "
         f"unmapped/protected during {op} but never shot down "
         f"({len(pending)} outstanding)")


# -- swap state --------------------------------------------------------------

def check_swap(monitor, enclave, san) -> None:
    """Swap-out/in must preserve version counters and residency state."""
    eid = enclave.enclave_id
    machine = monitor.machine
    state = monitor._swap_states.get(eid)
    records = dict(state.records) if state is not None else {}
    shadow_versions = {va: v for (e, va), v in
                       san.shadow.swap_versions.items() if e == eid}
    for va, record in records.items():
        version = shadow_versions.pop(va, None)
        if version is None:
            fail(machine, san, SAN_SWAP,
                 f"swap record for enclave {eid} page {va:#x} has no "
                 f"shadow version entry")
        if version != record.version:
            fail(machine, san, SAN_SWAP,
                 f"swap version mismatch for enclave {eid} page {va:#x}: "
                 f"monitor says v{record.version}, shadow saw v{version} "
                 f"(anti-replay counter tampered)")
        if enclave.page_at(va) is not None:
            fail(machine, san, SAN_SWAP,
                 f"enclave {eid} page {va:#x} is both swapped out and "
                 f"committed")
    if shadow_versions:
        va = sorted(shadow_versions)[0]
        fail(machine, san, SAN_SWAP,
             f"shadow swap entry for enclave {eid} page {va:#x} has no "
             f"monitor record (record dropped without swap-in)")


# -- measurement freeze ------------------------------------------------------

def check_measurement(monitor, enclave, san) -> None:
    """MRENCLAVE/MRSIGNER and measured page content freeze at EINIT."""
    snapshot = san.shadow.measurements.get(enclave.enclave_id)
    if snapshot is None:
        return
    machine = monitor.machine
    eid = enclave.enclave_id
    if enclave.secs.mrenclave != snapshot.mrenclave:
        fail(machine, san, SAN_MEASURE,
             f"enclave {eid} MRENCLAVE register changed after EINIT")
    if enclave.secs.mrsigner != snapshot.mrsigner:
        fail(machine, san, SAN_MEASURE,
             f"enclave {eid} MRSIGNER register changed after EINIT")
    from repro.monitor.structs import PagePerm
    for offset, digest in list(snapshot.page_hashes.items()):
        page = enclave.pages.get(offset)
        if page is None:
            continue                 # trimmed or swapped out: content is
                                     # protected elsewhere (AEAD / scrub)
        if page.perms & PagePerm.W:
            # The page was legitimately made writable post-EINIT
            # (EMODPE); the freeze no longer applies to its content.
            del snapshot.page_hashes[offset]
            continue
        if sha256(machine.phys.read(page.pa, PAGE_SIZE)) != digest:
            fail(machine, san, SAN_MEASURE,
                 f"measured page at offset {offset:#x} of enclave {eid} "
                 f"was modified after the EINIT measurement freeze",
                 frame=page.pa // PAGE_SIZE)


# -- untrusted reachability --------------------------------------------------

def check_untrusted_reach(machine, san) -> None:
    """No monitor/enclave frame may be reachable from an untrusted PT."""
    for pt in san.untrusted_pts():
        for va, pa, _flags in pt.mappings():
            owner = machine.phys.owner_of(pa)
            if owner.kind in (OwnerKind.MONITOR, OwnerKind.ENCLAVE):
                fail(machine, san, SAN_REACH,
                     f"untrusted page table maps {render_owner(owner)} "
                     f"frame {pa:#x} at {va:#x}", frame=pa // PAGE_SIZE)


# -- entry points ------------------------------------------------------------

def audit_monitor(monitor) -> None:
    """The full global sweep (RustMonitor.audit_invariants delegates here).

    Works with or without an attached sanitizer: the shadow-dependent
    checks (lockstep, TLB coherence, swap versions, measurement freeze,
    untrusted reach) need the hooks and only run when one is attached.
    """
    san = getattr(monitor.machine, "sanitizer", None)
    seen: dict[int, int] = {}
    for enclave in monitor.enclaves.values():
        check_enclave(monitor, enclave, san, seen=seen)
        if san is not None:
            check_measurement(monitor, enclave, san)
            check_swap(monitor, enclave, san)
    check_npt(monitor, san)
    if san is not None:
        check_lockstep(monitor.machine, san, full=True)
        check_pending_shootdowns(monitor.machine, san)
        check_untrusted_reach(monitor.machine, san)


def after_op(monitor, san, op: str, enclave_id: int | None = None,
             page_va: int | None = None) -> None:
    """The scoped check the sanitizer runs after every monitor op.

    Hot ops (page faults, swaps) re-check only the touched page so
    sanitized benchmark runs stay near-linear; lifecycle ops re-walk the
    whole enclave.
    """
    machine = monitor.machine
    check_lockstep(machine, san)
    check_pending_shootdowns(machine, san)
    check_npt(monitor, san)
    enclave = monitor.enclaves.get(enclave_id) \
        if enclave_id is not None else None
    if enclave is None:
        return
    if op in PAGE_SCOPED_OPS and page_va is not None:
        check_enclave_page(monitor, enclave, san, page_va)
        check_swap(monitor, enclave, san)
        return
    check_enclave(monitor, enclave, san)
    check_measurement(monitor, enclave, san)
    check_swap(monitor, enclave, san)
