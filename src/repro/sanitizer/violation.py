"""Structured sanitizer violations.

A :class:`SanitizerViolation` subclasses :class:`~repro.errors.
SecurityViolation` so every existing ``pytest.raises(SecurityViolation)``
site keeps working, but adds a machine-checkable ``code`` and the frame
history (allocation site, last transitions, owning operation) that makes
a report actionable.

Violation codes — one per invariant:

========== ==================================================================
SAN-OWNER  an enclave page table maps a frame it does not own (I-1)
SAN-ALIAS  one physical frame is mapped by two enclaves (I-2)
SAN-NPT    the normal VM's NPT covers monitor/enclave frames (I-3)
SAN-ELRANGE a committed enclave page lies outside its ELRANGE (I-4)
SAN-WX     an enclave mapping is both WRITABLE and executable
SAN-REACH  a monitor/EPC frame is reachable from an untrusted page table
SAN-TLB    a TLB entry may outlive an unmap/protect (missing shootdown)
SAN-SWAP   swap in/out broke ownership or version-counter monotonicity
SAN-MEASURE a measurement register or measured page changed after EINIT
SAN-SHADOW the shadow ownership model diverged from physical memory
========== ==================================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SecurityViolation

SAN_OWNER = "SAN-OWNER"
SAN_ALIAS = "SAN-ALIAS"
SAN_NPT = "SAN-NPT"
SAN_ELRANGE = "SAN-ELRANGE"
SAN_WX = "SAN-WX"
SAN_REACH = "SAN-REACH"
SAN_TLB = "SAN-TLB"
SAN_SWAP = "SAN-SWAP"
SAN_MEASURE = "SAN-MEASURE"
SAN_SHADOW = "SAN-SHADOW"

ALL_CODES = (SAN_OWNER, SAN_ALIAS, SAN_NPT, SAN_ELRANGE, SAN_WX, SAN_REACH,
             SAN_TLB, SAN_SWAP, SAN_MEASURE, SAN_SHADOW)


@dataclass(frozen=True)
class FrameTransition:
    """One ownership transition of one physical frame.

    ``seq`` is a deterministic global sequence number (not wall time) so
    transition ordering is reproducible run to run.
    """

    seq: int
    frame: int                 # frame number (pa >> PAGE_SHIFT)
    owner: str                 # new owner tag, rendered
    op: str                    # monitor operation / site that caused it
    npages: int = 1            # >1 for bulk range transitions

    def render(self) -> str:
        span = f"+{self.npages}" if self.npages > 1 else ""
        return (f"#{self.seq} frame {self.frame:#x}{span} -> "
                f"{self.owner} during {self.op}")


class SanitizerViolation(SecurityViolation):
    """A monitor invariant was broken; carries code + frame history."""

    def __init__(self, code: str, message: str,
                 history: tuple[FrameTransition, ...] = ()) -> None:
        self.code = code
        self.history = tuple(history)
        text = f"[{code}] {message}"
        if self.history:
            lines = "\n".join("  " + t.render() for t in self.history)
            text = f"{text}\nframe history (oldest first):\n{lines}"
        super().__init__(text)
