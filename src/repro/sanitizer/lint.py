"""repro-lint: the static prong of the sanitizer suite.

Usage::

    python -m repro.sanitizer.lint src/ [more paths...]
                                   [--format=text|json]
                                   [--config=path/to/pyproject.toml]

Exit codes: 0 clean, 1 unsuppressed findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.sanitizer.lintconfig import (LintConfig, find_pyproject,
                                        load_config)
from repro.sanitizer.rules import Finding, lint_source

USAGE_ERROR = 2


def collect_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        if path.is_file():
            files.add(path)
        else:
            files.update(path.rglob("*.py"))
    return sorted(files)


def lint_paths(paths: list[Path],
               config: LintConfig | None = None) -> list[Finding]:
    """Lint every Python file under ``paths`` (the library entry point)."""
    if config is None:
        config = load_config(find_pyproject(paths[0].resolve()))
    findings: list[Finding] = []
    for file in collect_files(paths):
        findings.extend(lint_source(file.read_text(), file, config))
    return findings


def render_report(findings: list[Finding], fmt: str) -> str:
    """The text or JSON report body."""
    active = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]
    if fmt == "json":
        return json.dumps({
            "findings": [f.as_dict() for f in active],
            "suppressed": [f.as_dict() for f in suppressed],
            "counts": {"findings": len(active),
                       "suppressed": len(suppressed)},
        }, indent=2)
    lines = [f.render() for f in active]
    lines.append(f"{len(active)} finding(s), {len(suppressed)} "
                 f"suppressed")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.sanitizer.lint",
        description="Static repro-lint over simulation source trees.")
    parser.add_argument("paths", nargs="+", help="files or directories")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--config", default=None,
                        help="pyproject.toml holding [tool.repro-lint]")
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors already; normalize --help to 0.
        return int(exc.code or 0)
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {missing[0]}", file=sys.stderr)
        return USAGE_ERROR
    if args.config is not None:
        config_path = Path(args.config)
        if not config_path.is_file():
            print(f"error: no such config: {config_path}", file=sys.stderr)
            return USAGE_ERROR
        config = load_config(config_path)
    else:
        config = load_config(find_pyproject(paths[0].resolve()))
    try:
        findings = lint_paths(paths, config)
    except SyntaxError as exc:
        print(f"error: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}",
              file=sys.stderr)
        return USAGE_ERROR
    print(render_report(findings, args.format))
    return 1 if any(not f.suppressed for f in findings) else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Reader went away (e.g. piped into `head`): exit like a
        # SIGPIPE kill, not 0 — findings may have gone unreported.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(128 + 13)
