"""MONSAN: the monitor-invariant sanitizer and repro-lint suite.

Two prongs (see docs/SANITIZER.md):

* a *runtime sanitizer* — a shadow ownership model of simulated physical
  memory kept in lockstep with the real state via hooks in ``phys`` /
  ``paging`` / ``tlb`` / ``swap``, plus invariant checkers that run after
  every monitor operation when ``REPRO_SANITIZE=1``;
* a *static repro-lint* — AST rules (R001..R005) for the determinism and
  isolation conventions this codebase depends on, run as
  ``python -m repro.sanitizer.lint src/``.

The sanitizer observes — it never charges cycles — so enabling it leaves
every calibrated benchmark number bit-identical.
"""

from repro.sanitizer.runtime import Sanitizer, sanitize_enabled
from repro.sanitizer.violation import (SAN_ALIAS, SAN_ELRANGE, SAN_MEASURE,
                                       SAN_NPT, SAN_OWNER, SAN_REACH,
                                       SAN_SHADOW, SAN_SWAP, SAN_TLB, SAN_WX,
                                       FrameTransition, SanitizerViolation)

__all__ = [
    "Sanitizer", "SanitizerViolation", "FrameTransition", "sanitize_enabled",
    "SAN_OWNER", "SAN_ALIAS", "SAN_NPT", "SAN_ELRANGE", "SAN_WX", "SAN_TLB",
    "SAN_SWAP", "SAN_MEASURE", "SAN_REACH", "SAN_SHADOW",
]
