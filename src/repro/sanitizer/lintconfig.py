"""Configuration for repro-lint: the ``[tool.repro-lint]`` pyproject table.

Recognized keys::

    [tool.repro-lint]
    disable = ["R004"]              # rules turned off entirely
    exclude = ["repro/vendored/"]   # path fragments skipped by every rule

    [tool.repro-lint.rule-excludes] # path fragments skipped per rule
    R001 = ["repro/telemetry/"]

Path fragments are matched as substrings of the POSIX-style file path,
so ``"repro/telemetry/"`` excludes the whole package.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class LintConfig:
    """Resolved repro-lint settings."""

    disable: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    rule_excludes: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def rule_enabled(self, rule: str) -> bool:
        """Whether ``rule`` runs at all."""
        return rule not in self.disable

    def path_excluded(self, rule: str, path: Path) -> bool:
        """Whether ``path`` is out of scope for ``rule``."""
        posix = path.as_posix()
        if any(fragment in posix for fragment in self.exclude):
            return True
        return any(fragment in posix
                   for fragment in self.rule_excludes.get(rule, ()))


def find_pyproject(start: Path) -> Path | None:
    """Walk up from ``start`` to the nearest pyproject.toml."""
    for directory in [start, *start.parents]:
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def load_config(pyproject: Path | None) -> LintConfig:
    """Read ``[tool.repro-lint]``; absent file or table means defaults."""
    if pyproject is None or not pyproject.is_file():
        return LintConfig()
    with open(pyproject, "rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("repro-lint", {})
    rule_excludes = {rule: tuple(paths) for rule, paths in
                     table.get("rule-excludes", {}).items()}
    return LintConfig(disable=tuple(table.get("disable", ())),
                      exclude=tuple(table.get("exclude", ())),
                      rule_excludes=rule_excludes)
