"""The repro-lint rules: AST checks for reproduction-repo discipline.

====  =======================================================================
R001  No wall-clock or unseeded randomness in cycle-charged simulation code:
      results must be a pure function of the op sequence.  Seeded
      ``random.Random(seed)`` instances are deterministic and allowed.
R002  Untrusted/SDK layers (``repro.sdk``, ``repro.apps``, ``repro.osim``)
      never call ``PhysicalMemory`` read/write primitives directly — all
      access goes through :mod:`repro.hw.memaccess` with a translate
      callback that owns the policy (paging, policing, access control).
R003  Every public ``RustMonitor`` entry point charges the hypercall
      round-trip (``self._charge_hypercall``): un-charged entry points
      silently skew every cycle table.
R004  Every telemetry span is closed: ``.span(...)`` may only appear as a
      ``with`` context expression or be returned to a caller who will.
R005  No bare ``except:`` in the trusted layers (``repro.monitor``,
      ``repro.hw``): swallowing ``SecurityViolation`` would turn a caught
      attack into silent corruption.
====  =======================================================================

Suppression: ``# repro-lint: disable=R001 -- one-line justification`` on
the offending line, or on a comment block immediately above it.  A
directive without a justification does not suppress.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

ALL_RULES = ("R001", "R002", "R003", "R004", "R005")

# Shared with repro.staticcheck: SC rules use the same pragma syntax.
_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*disable="
    r"(?P<rules>(?:R|SC)\d{3}(?:\s*,\s*(?:R|SC)\d{3})*)"
    r"(?:\s*--\s*(?P<why>\S.*))?")

# R001: wall-clock sources and nondeterministic randomness.
_WALL_CLOCK = {("time", "time"), ("time", "time_ns"),
               ("time", "perf_counter"), ("time", "perf_counter_ns"),
               ("time", "monotonic"), ("time", "monotonic_ns"),
               ("time", "process_time"), ("time", "process_time_ns"),
               ("time", "thread_time"), ("time", "thread_time_ns"),
               ("time", "clock_gettime"), ("time", "clock_gettime_ns"),
               ("datetime", "now"), ("datetime", "utcnow"),
               ("datetime", "today")}
_RANDOM_FUNCS = {"random", "randrange", "randint", "randbytes", "choice",
                 "choices", "shuffle", "sample", "uniform", "getrandbits",
                 "seed"}

# R002: the PhysicalMemory primitives untrusted layers must not call.
_PHYS_METHODS = {"read", "write", "read_u64", "write_u64", "zero_frame"}
_R002_LAYERS = ("repro/sdk/", "repro/apps/", "repro/osim/")
_R005_LAYERS = ("repro/monitor/", "repro/hw/")


@dataclass
class Finding:
    """One lint hit, suppressed or not."""

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    justification: str | None = None

    def as_dict(self) -> dict:
        """JSON-report form."""
        out = {"rule": self.rule, "path": self.path, "line": self.line,
               "message": self.message, "suppressed": self.suppressed}
        if self.justification is not None:
            out["justification"] = self.justification
        return out

    def render(self) -> str:
        """Human-readable one-liner."""
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}: {self.rule}{tag}: {self.message}"


@dataclass
class Suppressions:
    """Per-line suppression directives parsed from source comments."""

    by_line: dict[int, dict[str, str]] = field(default_factory=dict)

    def lookup(self, line: int, rule: str) -> str | None:
        """The justification if ``rule`` is suppressed on ``line``."""
        return self.by_line.get(line, {}).get(rule)


def parse_suppressions(source: str) -> Suppressions:
    """Extract directives; each covers its own line, any directly
    following comment lines, and the first code line after them."""
    sup = Suppressions()
    lines = source.splitlines()
    for lineno, text in enumerate(lines, start=1):
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        why = (match.group("why") or "").strip()
        if not why:
            continue                    # justification is mandatory
        rules = {r.strip() for r in match.group("rules").split(",")}
        covered = [lineno]
        # A standalone comment directive propagates through the rest of
        # its comment block and onto the first code line below; an
        # end-of-line directive covers only the line it sits on.
        if text.strip().startswith("#"):
            cursor = lineno
            while cursor < len(lines):
                nxt = lines[cursor].strip()
                cursor += 1
                covered.append(cursor)
                if nxt and not nxt.startswith("#"):
                    break               # first code line reached
        for line in covered:
            entry = sup.by_line.setdefault(line, {})
            for rule in rules:
                entry[rule] = why
    return sup


def _qualified(node: ast.AST) -> tuple[str, str] | None:
    """``module.attr`` for an ``ast.Attribute`` over a plain name."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return node.value.id, node.attr
    return None


def _import_aliases(tree: ast.AST) -> dict[str, str]:
    """Bound name -> dotted import target (``import time as t``,
    ``from time import time as t``), so renamed imports still match."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.asname is not None:
                    aliases[item.asname] = item.name
        elif isinstance(node, ast.ImportFrom) \
                and node.module and node.level == 0:
            for item in node.names:
                if item.name != "*":
                    aliases[item.asname or item.name] = \
                        f"{node.module}.{item.name}"
    return aliases


def _resolve_qual(node: ast.Call,
                  aliases: dict[str, str]) -> tuple[str, str] | None:
    """(module, attr) for a call, resolving through import aliases.

    Handles ``tm.time()`` after ``import time as tm`` and the bare
    ``t()`` after ``from time import time as t``.
    """
    qual = _qualified(node.func)
    if qual is not None:
        base, attr = qual
        dotted = aliases.get(base)
        if dotted is not None:
            base = dotted.rpartition(".")[2] or dotted
        return base, attr
    if isinstance(node.func, ast.Name):
        dotted = aliases.get(node.func.id)
        if dotted is not None and "." in dotted:
            mod, _, attr = dotted.rpartition(".")
            return mod.rpartition(".")[2] or mod, attr
    return None


def check_r001(tree: ast.AST, path: str) -> list[Finding]:
    """Wall clocks and unseeded randomness in simulation code."""
    findings = []
    aliases = _import_aliases(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        qual = _resolve_qual(node, aliases)
        if qual is None:
            continue
        if qual in _WALL_CLOCK:
            findings.append(Finding(
                "R001", path, node.lineno,
                f"wall-clock call {qual[0]}.{qual[1]}() in cycle-charged "
                f"code; simulated results must not depend on host time"))
        elif qual[0] == "random" and qual[1] in _RANDOM_FUNCS:
            findings.append(Finding(
                "R001", path, node.lineno,
                f"global random.{qual[1]}() is nondeterministic across "
                f"runs; use a seeded random.Random(seed) instance"))
        elif qual == ("random", "Random") and not node.args \
                and not node.keywords:
            findings.append(Finding(
                "R001", path, node.lineno,
                "random.Random() without a seed draws from the OS; pass "
                "an explicit seed"))
    return findings


def check_r002(tree: ast.AST, path: str) -> list[Finding]:
    """Direct PhysicalMemory access from untrusted/SDK layers."""
    if not any(layer in path for layer in _R002_LAYERS):
        return []
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _PHYS_METHODS):
            continue
        base = func.value
        if isinstance(base, ast.Attribute) and base.attr == "phys":
            findings.append(Finding(
                "R002", path, node.lineno,
                f"direct PhysicalMemory.{func.attr}() from an untrusted "
                f"layer; go through repro.hw.memaccess with a translate "
                f"callback"))
    return findings


_CHARGE_ATTRS = {"_charge_hypercall", "charge", "charge_steps"}


def _charging_methods(cls: ast.ClassDef) -> set[str]:
    """Methods that charge cycles, directly or through ``self.m()``
    calls to other methods of the same class (fixpoint)."""
    methods = {item.name: item for item in cls.body
               if isinstance(item, ast.FunctionDef)}
    direct: set[str] = set()
    self_calls: dict[str, set[str]] = {}
    for name, item in methods.items():
        self_calls[name] = set()
        for call in ast.walk(item):
            if not (isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)):
                continue
            if call.func.attr in _CHARGE_ATTRS:
                direct.add(name)
            elif isinstance(call.func.value, ast.Name) \
                    and call.func.value.id == "self" \
                    and call.func.attr in methods:
                self_calls[name].add(call.func.attr)
    charging = set(direct)
    changed = True
    while changed:
        changed = False
        for name, callees in self_calls.items():
            if name not in charging and callees & charging:
                charging.add(name)
                changed = True
    return charging


def check_r003(tree: ast.AST, path: str) -> list[Finding]:
    """RustMonitor public entry points must charge cycles.

    Interprocedural-lite: a method counts as charging if it reaches a
    ``_charge_hypercall``/``charge``/``charge_steps`` call directly or
    through ``self.<method>()`` calls within the class.  The fully
    whole-program form of this rule is repro.staticcheck SC003.
    """
    if not path.endswith("monitor/rustmonitor.py"):
        return []
    findings = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef)
                and node.name == "RustMonitor"):
            continue
        charging = _charging_methods(node)
        for item in node.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            if item.name.startswith("_"):
                continue
            decorators = {d.id for d in item.decorator_list
                          if isinstance(d, ast.Name)}
            if "property" in decorators:
                continue
            if item.name not in charging:
                findings.append(Finding(
                    "R003", path, item.lineno,
                    f"public entry point {item.name}() never charges "
                    f"cycles (directly or via self-method calls); "
                    f"un-charged hypercalls skew the cycle tables"))
    return findings


def check_r004(tree: ast.AST, path: str) -> list[Finding]:
    """Telemetry spans must be context-managed (or handed to the caller)."""
    allowed: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                allowed.add(id(item.context_expr))
        elif isinstance(node, ast.Return) and node.value is not None:
            allowed.add(id(node.value))
    findings = []
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
                and id(node) not in allowed):
            findings.append(Finding(
                "R004", path, node.lineno,
                "span opened outside a with-statement; a span that is "
                "never closed corrupts the trace nesting"))
    return findings


def check_r005(tree: ast.AST, path: str) -> list[Finding]:
    """No bare ``except:`` in the trusted layers."""
    if not any(layer in path for layer in _R005_LAYERS):
        return []
    findings = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(Finding(
                "R005", path, node.lineno,
                "bare except in a trusted layer can swallow "
                "SecurityViolation; catch specific exceptions"))
    return findings


_CHECKS = {"R001": check_r001, "R002": check_r002, "R003": check_r003,
           "R004": check_r004, "R005": check_r005}


def lint_source(source: str, path: Path, config) -> list[Finding]:
    """Run every enabled rule over one file's source text."""
    tree = ast.parse(source, filename=str(path))
    suppressions = parse_suppressions(source)
    posix = path.as_posix()
    findings: list[Finding] = []
    for rule, check in _CHECKS.items():
        if not config.rule_enabled(rule):
            continue
        if config.path_excluded(rule, path):
            continue
        for finding in check(tree, posix):
            why = suppressions.lookup(finding.line, rule)
            if why is not None:
                finding.suppressed = True
                finding.justification = why
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
