"""The shadow state the runtime sanitizer keeps in lockstep.

ASan-style: every mutation of the real state (frame ownership, page-table
entries, TLB, swap metadata, measurements) is mirrored here through hooks,
and the invariant checkers compare shadow against reality.  Divergence
means some code path mutated state without going through the hooked
surface — exactly the bug class the sanitizer exists to catch.

Everything in here is observation only: no cycles are charged, no
simulated hardware is touched, and all bookkeeping is deterministic
(sequence numbers, not wall time), so enabling the sanitizer leaves every
calibrated benchmark number bit-identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.sanitizer.violation import FrameTransition

# Per-frame histories are capped so a long-lived machine cannot grow
# without bound; the global ring keeps the most recent transitions across
# all frames for "what just happened" forensics.
HISTORY_PER_FRAME = 8
RING_CAPACITY = 512
# Bulk retags (e.g. the boot-time reservation of the whole monitor
# region) record one range entry in the ring instead of one entry per
# frame — per-frame history starts at the first individual transition.
BULK_THRESHOLD = 64


def render_owner(owner) -> str:
    """Render an :class:`~repro.hw.phys.Owner` tag compactly."""
    if owner.enclave_id is not None:
        return f"{owner.kind.value}:{owner.enclave_id}"
    return owner.kind.value


@dataclass
class MeasurementSnapshot:
    """The frozen identity of one enclave, taken at EINIT."""

    mrenclave: bytes
    mrsigner: bytes
    page_hashes: dict[int, bytes] = field(default_factory=dict)


class ShadowMemory:
    """Shadow ownership model plus the sanitizer's auxiliary shadows."""

    def __init__(self) -> None:
        # frame number -> Owner, mirroring PhysicalMemory's internal map
        # (FREE frames are absent, matching the real representation).
        self.owners: dict[int, object] = {}
        # Frames mutated since the last lockstep check.
        self.dirty: set[int] = set()
        self.history: dict[int, deque[FrameTransition]] = {}
        self.ring: deque[FrameTransition] = deque(maxlen=RING_CAPACITY)
        # Shadow TLB-coherence protocol: (asid, vpn) entries whose
        # translation went stale (unmap/protect) and whose shootdown has
        # not been observed yet.  Must be empty after every monitor op.
        self.pending_shootdowns: dict[tuple[int, int], str] = {}
        # frame number -> set of enclave ids whose page table maps it.
        self.frame_mappers: dict[int, set[int]] = {}
        # Swap anti-replay shadow: (enclave id, page va) -> version, and
        # the per-enclave high-water mark versions must keep climbing.
        self.swap_versions: dict[tuple[int, int], int] = {}
        self.swap_last_version: dict[int, int] = {}
        self.measurements: dict[int, MeasurementSnapshot] = {}
        self.seq = 0
        self.current_op = "boot"

    # -- ownership transitions ----------------------------------------------

    def record_owner(self, frame: int, owner, npages: int) -> None:
        """Mirror a ``set_owner`` call (called from the phys hook)."""
        from repro.hw.phys import OwnerKind
        free = owner.kind is OwnerKind.FREE
        for i in range(frame, frame + npages):
            if free:
                self.owners.pop(i, None)
            else:
                self.owners[i] = owner
            self.dirty.add(i)
        self.seq += 1
        rendered = render_owner(owner)
        transition = FrameTransition(seq=self.seq, frame=frame,
                                     owner=rendered, op=self.current_op,
                                     npages=npages)
        self.ring.append(transition)
        if npages <= BULK_THRESHOLD:
            for i in range(frame, frame + npages):
                per_frame = self.history.get(i)
                if per_frame is None:
                    per_frame = deque(maxlen=HISTORY_PER_FRAME)
                    self.history[i] = per_frame
                per_frame.append(FrameTransition(
                    seq=self.seq, frame=i, owner=rendered,
                    op=self.current_op))

    def frame_history(self, frame: int) -> tuple[FrameTransition, ...]:
        """Everything known about one frame, oldest first."""
        per_frame = self.history.get(frame)
        if per_frame:
            return tuple(per_frame)
        # Fall back to bulk-range ring entries covering the frame.
        return tuple(t for t in self.ring
                     if t.frame <= frame < t.frame + t.npages)

    # -- TLB-coherence protocol ---------------------------------------------

    def translation_stale(self, asid: int, vpn: int, op: str) -> None:
        self.pending_shootdowns[(asid, vpn)] = op

    def shootdown_observed(self, asid: int, vpn: int) -> None:
        self.pending_shootdowns.pop((asid, vpn), None)

    def flush_observed(self, asid: int | None = None) -> None:
        if asid is None:
            self.pending_shootdowns.clear()
            return
        for key in [k for k in self.pending_shootdowns if k[0] == asid]:
            del self.pending_shootdowns[key]

    # -- monitor (re)boot ----------------------------------------------------

    def reset_monitor_state(self) -> None:
        """Forget monitor-scoped shadows when a new RustMonitor boots.

        The frame-ownership shadow survives (physical memory does), but
        enclave ids, swap versions, measurements and pending shootdowns
        are all scoped to one monitor instance.
        """
        self.pending_shootdowns.clear()
        self.frame_mappers.clear()
        self.swap_versions.clear()
        self.swap_last_version.clear()
        self.measurements.clear()
        self.current_op = "boot"

    # -- per-enclave teardown -----------------------------------------------

    def drop_enclave(self, enclave_id: int) -> None:
        """Forget everything about one enclave (EREMOVE)."""
        for mappers in self.frame_mappers.values():
            mappers.discard(enclave_id)
        self.flush_observed(enclave_id)
        for key in [k for k in self.swap_versions if k[0] == enclave_id]:
            del self.swap_versions[key]
        self.swap_last_version.pop(enclave_id, None)
        self.measurements.pop(enclave_id, None)
