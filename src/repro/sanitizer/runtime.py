"""The runtime sanitizer hub: hooks in, checks out.

One :class:`Sanitizer` hangs off a :class:`~repro.hw.machine.Machine`
when ``REPRO_SANITIZE=1`` (or ``MachineConfig(sanitize=True)``).  The
hardware layers call the ``on_*`` hooks on every state mutation — a
single attribute test when disabled — and RustMonitor calls
:meth:`after_monitor_op` at the end of every operation, which runs the
scoped invariant checks from :mod:`repro.sanitizer.invariants`.

The sanitizer only ever observes: it charges no cycles and perturbs no
hardware statistics, so Table 1/2 numbers are bit-identical with it on.
"""

from __future__ import annotations

import os
import weakref

from repro.crypto.hashes import sha256
from repro.hw.phys import PAGE_SIZE, OwnerKind
from repro.sanitizer import invariants
from repro.sanitizer.shadow import (MeasurementSnapshot, ShadowMemory,
                                    render_owner)
from repro.sanitizer.violation import SAN_REACH, SAN_SWAP


def sanitize_enabled() -> bool:
    """The ``REPRO_SANITIZE`` environment switch (``1``/anything truthy)."""
    return os.environ.get("REPRO_SANITIZE", "0") not in ("", "0")


class Sanitizer:
    """Shadow-state owner and invariant-check driver for one machine."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self.shadow = ShadowMemory()
        self.violations = 0
        self._untrusted: weakref.WeakSet = weakref.WeakSet()
        machine.phys.sanitizer = self
        machine.tlb.sanitizer = self

    def set_op(self, name: str) -> None:
        """Label subsequent frame transitions with the operation name."""
        self.shadow.current_op = name

    def on_monitor_boot(self) -> None:
        """A fresh RustMonitor claimed the machine (boot or relaunch):
        enclave-id-scoped shadows from the previous instance are void."""
        self.shadow.reset_monitor_state()

    # -- physical-memory hook ------------------------------------------------

    def on_set_owner(self, frame: int, owner, npages: int) -> None:
        self.shadow.record_owner(frame, owner, npages)

    # -- page-table hooks ----------------------------------------------------

    def on_pt_map(self, pt, va: int, pa: int) -> None:
        frame = pa // PAGE_SIZE
        if pt.untrusted:
            owner = self.machine.phys.owner_of(pa)
            if owner.kind in (OwnerKind.MONITOR, OwnerKind.ENCLAVE):
                # Raised *before* the PTE is written: the poisonous
                # mapping never lands, so attack tests leave no residue.
                invariants.fail(
                    self.machine, self, SAN_REACH,
                    f"untrusted page table would map "
                    f"{render_owner(owner)} frame {pa:#x} at {va:#x}",
                    frame=frame)
        if pt.asid is not None:
            self.shadow.frame_mappers.setdefault(frame, set()).add(pt.asid)

    def on_pt_unmap(self, pt, va: int, pa: int) -> None:
        if pt.asid is None:
            return
        mappers = self.shadow.frame_mappers.get(pa // PAGE_SIZE)
        if mappers is not None:
            mappers.discard(pt.asid)
        self.shadow.translation_stale(pt.asid, va // PAGE_SIZE,
                                      self.shadow.current_op)

    def on_pt_protect(self, pt, va: int) -> None:
        if pt.asid is not None:
            self.shadow.translation_stale(pt.asid, va // PAGE_SIZE,
                                          self.shadow.current_op)

    # -- TLB hooks -----------------------------------------------------------

    def on_tlb_invlpg(self, asid: int, vpn: int) -> None:
        self.shadow.shootdown_observed(asid, vpn)

    def on_tlb_flush(self) -> None:
        self.shadow.flush_observed()

    def on_tlb_flush_asid(self, asid: int) -> None:
        self.shadow.flush_observed(asid)

    # -- swap hooks ----------------------------------------------------------

    def on_swap_out(self, enclave, page_va: int, version: int,
                    pa: int) -> None:
        eid = enclave.enclave_id
        shadow = self.shadow
        last = shadow.swap_last_version.get(eid, 0)
        if version <= last:
            invariants.fail(
                self.machine, self, SAN_SWAP,
                f"swap-out version v{version} for enclave {eid} page "
                f"{page_va:#x} does not advance past v{last} "
                f"(anti-replay counter must be monotonic)")
        shadow.swap_last_version[eid] = version
        shadow.swap_versions[(eid, page_va)] = version
        owner = self.machine.phys.owner_of(pa)
        if owner.kind is not OwnerKind.FREE:
            invariants.fail(
                self.machine, self, SAN_SWAP,
                f"swap-out of enclave {eid} page {page_va:#x} left frame "
                f"{pa:#x} owned by {render_owner(owner)}, not free",
                frame=pa // PAGE_SIZE)

    def on_swap_in(self, enclave, page_va: int, version: int,
                   pa: int) -> None:
        eid = enclave.enclave_id
        recorded = self.shadow.swap_versions.pop((eid, page_va), None)
        if recorded is None:
            invariants.fail(
                self.machine, self, SAN_SWAP,
                f"swap-in of enclave {eid} page {page_va:#x} with no "
                f"shadow version entry (replayed or double swap-in)")
        if recorded != version:
            invariants.fail(
                self.machine, self, SAN_SWAP,
                f"swap-in of enclave {eid} page {page_va:#x} used "
                f"v{version}, shadow recorded v{recorded}")
        owner = self.machine.phys.owner_of(pa)
        if owner.kind is not OwnerKind.ENCLAVE or owner.enclave_id != eid:
            invariants.fail(
                self.machine, self, SAN_SWAP,
                f"swap-in placed enclave {eid} page {page_va:#x} in frame "
                f"{pa:#x} owned by {render_owner(owner)}",
                frame=pa // PAGE_SIZE)

    # -- lifecycle hooks -----------------------------------------------------

    def on_einit(self, enclave) -> None:
        """Freeze the measurement: registers plus non-writable content."""
        from repro.monitor.structs import PagePerm
        phys = self.machine.phys
        hashes = {offset: sha256(phys.read(page.pa, PAGE_SIZE))
                  for offset, page in enclave.pages.items()
                  if not page.perms & PagePerm.W}
        self.shadow.measurements[enclave.enclave_id] = MeasurementSnapshot(
            mrenclave=enclave.secs.mrenclave,
            mrsigner=enclave.secs.mrsigner,
            page_hashes=hashes)

    def on_enclave_removed(self, enclave_id: int) -> None:
        self.shadow.drop_enclave(enclave_id)

    # -- untrusted page-table registry ---------------------------------------

    def register_untrusted_pt(self, pt) -> None:
        """Mark a page table as untrusted (OS/process GPT): mapping a
        monitor or enclave frame through it raises immediately."""
        pt.untrusted = True
        self._untrusted.add(pt)

    def unregister_untrusted_pt(self, pt) -> None:
        pt.untrusted = False
        self._untrusted.discard(pt)

    def untrusted_pts(self) -> list:
        return list(self._untrusted)

    # -- the per-op check ----------------------------------------------------

    def after_monitor_op(self, monitor, op: str,
                         enclave_id: int | None = None,
                         page_va: int | None = None) -> None:
        invariants.after_op(monitor, self, op, enclave_id, page_va)
