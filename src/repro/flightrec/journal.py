"""The journal: an append-only record of one run.

A journal has a **header** (everything needed to re-execute the run:
scenario id and args, machine configs including the TPM seed, the cost
model fingerprint), a stream of **events** (a lossless superset of the
trace ring: every event the ring ever saw, wrap-around or not), and
periodic **checkpoints** — ``Machine.state_hash()`` values linked into a
hash chain.  Checkpoint *k*'s chain value commits to every checkpoint
before it, so two runs whose chains agree at *k* agreed on everything up
to *k*; that is what lets replay binary-search for the first divergence
instead of scanning linearly.
"""

from __future__ import annotations

import json
import pathlib

from repro.hw import statehash

JOURNAL_VERSION = 1
JOURNAL_KIND = "hyperenclave-flightrec"


class JournalError(ValueError):
    """A malformed or internally-inconsistent journal."""


class JournalEvent:
    """One journaled trace event (compact list encoding in JSON)."""

    __slots__ = ("machine", "seq", "cycle", "kind", "detail", "cause")

    def __init__(self, machine: int, seq: int, cycle: int, kind: str,
                 detail: str, cause: str) -> None:
        self.machine = machine
        self.seq = seq
        self.cycle = cycle
        self.kind = kind
        self.detail = detail
        self.cause = cause

    def as_list(self) -> list:
        return [self.machine, self.seq, self.cycle, self.kind,
                self.detail, self.cause]

    @classmethod
    def from_list(cls, raw) -> "JournalEvent":
        if not isinstance(raw, list) or len(raw) != 6:
            raise JournalError(f"malformed event record: {raw!r}")
        return cls(*raw)

    def key(self) -> tuple:
        """What replay compares: everything but the machine slot index."""
        return (self.seq, self.cycle, self.kind, self.detail, self.cause)

    def __str__(self) -> str:
        tail = f"  <{self.cause}>" if self.cause else ""
        return (f"m{self.machine} #{self.seq:<6} [{self.cycle:>14,}] "
                f"{self.kind:<12} {self.detail}{tail}")


class Checkpoint:
    """One hash-chained machine checkpoint."""

    __slots__ = ("machine", "seq", "cycle", "state_hash", "chain")

    def __init__(self, machine: int, seq: int, cycle: int,
                 state_hash: str, chain: str) -> None:
        self.machine = machine
        self.seq = seq
        self.cycle = cycle
        self.state_hash = state_hash
        self.chain = chain

    def as_list(self) -> list:
        return [self.machine, self.seq, self.cycle, self.state_hash,
                self.chain]

    @classmethod
    def from_list(cls, raw) -> "Checkpoint":
        if not isinstance(raw, list) or len(raw) != 5:
            raise JournalError(f"malformed checkpoint record: {raw!r}")
        return cls(*raw)

    def __str__(self) -> str:
        return (f"m{self.machine} @#{self.seq} [{self.cycle:>14,}] "
                f"state={self.state_hash[:16]}… chain={self.chain[:16]}…")


class Journal:
    """An in-memory journal, JSON round-trippable."""

    def __init__(self, header: dict) -> None:
        self.header = header
        self.events: list[JournalEvent] = []
        self.checkpoints: list[Checkpoint] = []
        self.summary: dict = {}
        self._chain = self.seed_chain(header)

    # The chain seed commits only to the immutable part of the header:
    # the machines list grows *during* recording (machines attach as the
    # scenario constructs them), and a seed over a mutating header could
    # never be recomputed on load.
    _CHAIN_KEYS = ("scenario", "args", "checkpoint_every")

    @staticmethod
    def seed_chain(header: dict) -> str:
        """The chain seed commits to the run identity (scenario+args)."""
        return statehash.digest(
            {k: header.get(k) for k in Journal._CHAIN_KEYS})

    # ------------------------------------------------------------ appends --

    def add_event(self, event: JournalEvent) -> None:
        self.events.append(event)

    def add_checkpoint(self, machine: int, seq: int, cycle: int,
                       state_hash: str) -> Checkpoint:
        self._chain = statehash.chain(self._chain, state_hash, seq, cycle)
        cp = Checkpoint(machine, seq, cycle, state_hash, self._chain)
        self.checkpoints.append(cp)
        return cp

    # ---------------------------------------------------------------- I/O --

    def as_document(self) -> dict:
        return {
            "version": JOURNAL_VERSION,
            "kind": JOURNAL_KIND,
            "header": self.header,
            "events": [e.as_list() for e in self.events],
            "checkpoints": [c.as_list() for c in self.checkpoints],
            "summary": self.summary,
        }

    def write(self, path: str | pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_document()) + "\n")
        return path

    @classmethod
    def from_document(cls, document) -> "Journal":
        if not isinstance(document, dict):
            raise JournalError("journal: expected an object")
        if document.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"journal: unsupported version {document.get('version')!r}")
        if document.get("kind") != JOURNAL_KIND:
            raise JournalError(
                f"journal: unexpected kind {document.get('kind')!r}")
        header = document.get("header")
        if not isinstance(header, dict) or "scenario" not in header:
            raise JournalError("journal: missing header.scenario")
        journal = cls(header)
        for raw in document.get("events", []):
            journal.events.append(JournalEvent.from_list(raw))
        for raw in document.get("checkpoints", []):
            journal.checkpoints.append(Checkpoint.from_list(raw))
        journal.summary = document.get("summary", {})
        journal.verify_chain()
        return journal

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "Journal":
        return cls.from_document(json.loads(pathlib.Path(path).read_text()))

    # --------------------------------------------------------- validation --

    def verify_chain(self) -> None:
        """Recompute the hash chain; raise on tampering or truncation."""
        chain = self.seed_chain(self.header)
        for i, cp in enumerate(self.checkpoints):
            chain = statehash.chain(chain, cp.state_hash, cp.seq, cp.cycle)
            if chain != cp.chain:
                raise JournalError(
                    f"journal: checkpoint {i} breaks the hash chain "
                    f"(expected {chain[:16]}…, found {cp.chain[:16]}…)")
        self._chain = chain

    def events_between(self, lo_seq: int, hi_seq: int,
                       machine: int | None = None) -> list[JournalEvent]:
        """Events with ``lo_seq <= seq <= hi_seq`` (one machine slot)."""
        return [e for e in self.events
                if lo_seq <= e.seq <= hi_seq
                and (machine is None or e.machine == machine)]
