"""``python -m repro.flightrec`` — flight-recorder CLI entry point."""

from repro.flightrec.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
