"""Replay a journal and bisect to the first divergence.

Replay re-executes the journal's scenario under a fresh recorder and
compares the two journals.  The checkpoint hash chain makes the search
logarithmic: chain values are cumulative, so equality at checkpoint *k*
proves the runs agreed on every checkpoint up to *k*, and binary search
finds the first disagreeing checkpoint.  The event window between it and
the previous checkpoint is then scanned event-by-event for the first
mismatching (seq, cycle, kind, detail, cause) tuple — the exact first
divergent event.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.flightrec.journal import Journal, JournalEvent


@dataclass
class Divergence:
    """Where and how two runs first disagreed."""

    kind: str                       # "event" | "state" | "length"
    machine: int
    description: str
    baseline_event: JournalEvent | None = None
    replay_event: JournalEvent | None = None
    checkpoint_index: int | None = None
    baseline_window: list[str] = field(default_factory=list)
    replay_window: list[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"DIVERGENCE ({self.kind}): {self.description}"]
        if self.checkpoint_index is not None:
            lines.append(
                f"  first disagreeing checkpoint: #{self.checkpoint_index}")
        if self.baseline_event is not None:
            lines.append(f"  baseline event: {self.baseline_event}")
        if self.replay_event is not None:
            lines.append(f"  replay event:   {self.replay_event}")
        if self.baseline_window:
            lines.append("  baseline window:")
            lines.extend(f"    {line}" for line in self.baseline_window)
        if self.replay_window:
            lines.append("  replay window:")
            lines.extend(f"    {line}" for line in self.replay_window)
        return "\n".join(lines)


@dataclass
class ReplayResult:
    """The outcome of one replay."""

    journal: Journal                # the baseline (recorded) journal
    replayed: Journal
    divergence: Divergence | None
    replay_error: str | None = None

    @property
    def ok(self) -> bool:
        return self.divergence is None and self.replay_error is None

    def render(self, *, verbose: bool = False) -> str:
        base, rep = self.journal, self.replayed
        lines = [
            f"scenario:    {base.header['scenario']}",
            f"events:      baseline={len(base.events)} "
            f"replay={len(rep.events)}",
            f"checkpoints: baseline={len(base.checkpoints)} "
            f"replay={len(rep.checkpoints)}",
        ]
        if self.replay_error:
            lines.append(f"replay raised: {self.replay_error}")
        if self.divergence is None:
            lines.append("replay OK: zero divergence "
                         "(every checkpoint chain and event matches)")
        else:
            lines.append(self.divergence.render())
        if verbose and base.summary:
            lines.append(f"baseline summary: {base.summary}")
        return "\n".join(lines)


# -- divergence search -------------------------------------------------------

def _first_divergent_checkpoint(base: Journal, rep: Journal) -> int | None:
    """Binary search for the first checkpoint whose chains disagree.

    Valid because chains are cumulative: agreement at k implies
    agreement at every checkpoint before k.  Returns None when the
    common prefix fully agrees.
    """
    n = min(len(base.checkpoints), len(rep.checkpoints))
    lo, hi = 0, n
    while lo < hi:
        mid = (lo + hi) // 2
        if base.checkpoints[mid].chain != rep.checkpoints[mid].chain:
            hi = mid
        else:
            lo = mid + 1
    return lo if lo < n else None


def _window_bounds(journal: Journal, cp_index: int) -> tuple[int, int, int]:
    """(machine, lo_seq, hi_seq) for the events a checkpoint covers."""
    cp = journal.checkpoints[cp_index]
    lo_seq = 0
    for earlier in reversed(journal.checkpoints[:cp_index]):
        if earlier.machine == cp.machine:
            lo_seq = earlier.seq + 1
            break
    return cp.machine, lo_seq, cp.seq


def _first_event_mismatch(base_events: list[JournalEvent],
                          rep_events: list[JournalEvent]
                          ) -> tuple[int, JournalEvent | None,
                                     JournalEvent | None] | None:
    """Index + both sides of the first positional mismatch, else None."""
    for i, (b, r) in enumerate(zip(base_events, rep_events)):
        if b.key() != r.key():
            return i, b, r
    if len(base_events) != len(rep_events):
        i = min(len(base_events), len(rep_events))
        b = base_events[i] if i < len(base_events) else None
        r = rep_events[i] if i < len(rep_events) else None
        return i, b, r
    return None


def _event_windows(base_events, rep_events, index: int,
                   window: int) -> tuple[list[str], list[str]]:
    lo = max(index - window, 0)
    hi = index + window + 1
    mark = {index}

    def fmt(events):
        return [("=> " if i in mark else "   ") + str(e)
                for i, e in enumerate(events[lo:hi], start=lo)]
    return fmt(base_events), fmt(rep_events)


def find_divergence(base: Journal, rep: Journal, *,
                    window: int = 8) -> Divergence | None:
    """The first point where two journals of the same scenario disagree."""
    cp_index = _first_divergent_checkpoint(base, rep)
    if cp_index is not None:
        machine, lo_seq, hi_seq = _window_bounds(base, cp_index)
        base_events = base.events_between(lo_seq, hi_seq, machine)
        rep_events = rep.events_between(lo_seq, hi_seq, machine)
        mismatch = _first_event_mismatch(base_events, rep_events)
        if mismatch is not None:
            i, b, r = mismatch
            bw, rw = _event_windows(base_events, rep_events, i, window)
            what = b or r
            return Divergence(
                kind="event", machine=machine,
                description=(f"first divergent event is seq "
                             f"#{what.seq} ({what.kind}) in the window "
                             f"of checkpoint #{cp_index} "
                             f"(seq {lo_seq}..{hi_seq})"),
                baseline_event=b, replay_event=r,
                checkpoint_index=cp_index,
                baseline_window=bw, replay_window=rw)
        bcp = base.checkpoints[cp_index]
        rcp = rep.checkpoints[cp_index]
        bw, rw = _event_windows(base_events, rep_events,
                                len(base_events) - 1, window)
        return Divergence(
            kind="state", machine=machine,
            description=(f"checkpoint #{cp_index} state hashes differ "
                         f"({bcp.state_hash[:16]}… vs "
                         f"{rcp.state_hash[:16]}…) but every event in "
                         f"its window matches: a silent state "
                         f"divergence between seq {lo_seq} and "
                         f"{hi_seq}"),
            checkpoint_index=cp_index,
            baseline_window=bw, replay_window=rw)

    # The common checkpoint prefix agrees; look at the full event
    # streams (divergence after the last checkpoint, or a truncated
    # run).
    mismatch = _first_event_mismatch(base.events, rep.events)
    if mismatch is not None:
        i, b, r = mismatch
        bw, rw = _event_windows(base.events, rep.events, i, window)
        what = b or r
        kind = "event" if b is not None and r is not None else "length"
        return Divergence(
            kind=kind, machine=what.machine,
            description=(f"first divergent event is stream position {i} "
                         f"(seq #{what.seq}, {what.kind}), after the "
                         f"last agreeing checkpoint"),
            baseline_event=b, replay_event=r,
            baseline_window=bw, replay_window=rw)
    if len(base.checkpoints) != len(rep.checkpoints):
        return Divergence(
            kind="length", machine=0,
            description=(f"checkpoint counts differ "
                         f"({len(base.checkpoints)} vs "
                         f"{len(rep.checkpoints)}) with identical "
                         f"events — one run took extra checkpoints"))
    return None


# -- replay ------------------------------------------------------------------

def replay_journal(journal: Journal, *, window: int = 8,
                   perturb=None) -> ReplayResult:
    """Re-execute a journal's scenario and locate the first divergence.

    ``perturb`` is an optional context manager (see
    :mod:`repro.flightrec.perturb`) active during the re-execution —
    the test hook proving bisection localizes an injected fault.
    """
    import contextlib

    from repro.flightrec.recorder import record
    header = journal.header
    from repro.flightrec.scenario import resolve
    fn = resolve(header["scenario"])
    error = None
    with record(header["scenario"], header.get("args"),
                checkpoint_every=header.get(
                    "checkpoint_every", 1024)) as rec:
        try:
            with (perturb if perturb is not None
                  else contextlib.nullcontext()):
                figures = fn(dict(header.get("args") or {}))
        except Exception as exc:        # a diverged run may crash; keep
            figures = None              # the partial journal for bisection
            error = f"{type(exc).__name__}: {exc}"
    replayed = rec.finish(figures)
    divergence = find_divergence(journal, replayed, window=window)
    return ReplayResult(journal=journal, replayed=replayed,
                        divergence=divergence, replay_error=error)
