"""Deterministic fault injection for replay validation.

A perturbation makes a replay *intentionally* diverge so the bisection
machinery can be tested end-to-end: inject +1 cycle into the K-th charge
of some category and replay must name the exact first divergent event.
Implemented by patching :meth:`CycleCounter.charge` for the duration of
the context — the simulation itself is untouched.
"""

from __future__ import annotations

from repro.hw.cycles import CycleCounter


class perturb_cycles:
    """Add ``extra`` cycles to the ``at``-th charge matching ``category``.

    ``category`` matches exactly, or as a prefix when it ends with
    ``:`` (so ``"eenter:"`` matches ``"eenter:gu"`` and friends).
    Counting is global across every CycleCounter in the process, which
    is what makes the injection deterministic for a single-scenario
    replay.
    """

    def __init__(self, category: str, extra: float = 1.0,
                 at: int = 1) -> None:
        if at < 1:
            raise ValueError("at is 1-based")
        self.category = category
        self.extra = extra
        self.at = at
        self.fired = False
        self._seen = 0
        self._original = None

    def _matches(self, category: str) -> bool:
        if self.category.endswith(":"):
            return category.startswith(self.category)
        return category == self.category

    def __enter__(self) -> "perturb_cycles":
        self._original = CycleCounter.charge
        injector = self

        def charge(counter, cycles, category="misc"):
            if not injector.fired and injector._matches(category):
                injector._seen += 1
                if injector._seen == injector.at:
                    injector.fired = True
                    cycles = cycles + injector.extra
            return injector._original(counter, cycles, category)

        CycleCounter.charge = charge
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        CycleCounter.charge = self._original
        return False
