"""Forensic bundles: the post-mortem record of a failing run.

When a :class:`SanitizerViolation` is raised, or a recorded scenario
dies on an unhandled fault, the platform emits one bundle per machine:
the machine state hash and per-component fingerprint, a deep state dump
(CPU context, TLB entries, full page-table walks via the machine's dump
providers), the telemetry span stack that was open at the time, the last
N journal events, and a metrics snapshot.  ``python -m repro.flightrec
inspect <bundle>`` renders it.

Emission is opt-in: it happens only while a flight recorder is active or
``REPRO_FORENSICS_DIR`` is set (CI sets it so failing jobs upload
bundles as artifacts).  The happy path pays nothing.
"""

from __future__ import annotations

import json
import os
import pathlib

BUNDLE_VERSION = 1
BUNDLE_KIND = "hyperenclave-forensics"
DEFAULT_EVENT_TAIL = 64

FORENSICS_DIR_ENV = "REPRO_FORENSICS_DIR"

_emitted = 0


def forensics_dir() -> pathlib.Path:
    """Where bundles land (the CI artifact directory when set)."""
    return pathlib.Path(os.environ.get(FORENSICS_DIR_ENV) or "forensics")


def build_bundle(machine, error: BaseException | None = None, *,
                 events=None, label: str = "machine") -> dict:
    """Assemble one bundle document for ``machine``.

    ``events`` overrides the event tail (the recorder passes its
    lossless journal tail); by default the machine's own trace ring
    supplies the last events it still holds.
    """
    if events is None:
        events = [str(e) for e in machine.trace.events()[-DEFAULT_EVENT_TAIL:]]
    error_doc = None
    if error is not None:
        error_doc = {
            "type": type(error).__name__,
            "message": str(error),
            "code": getattr(error, "code", None),
        }
    from repro.flightrec.recorder import _config_document
    return {
        "version": BUNDLE_VERSION,
        "kind": BUNDLE_KIND,
        "label": label,
        "error": error_doc,
        "state_hash": machine.state_hash(),
        "state_fingerprint": machine.state_fingerprint(),
        "config": _config_document(machine.config),
        "cycles": {"total": machine.cycles.total,
                   "by_category": machine.cycles.breakdown()},
        "open_spans": machine.telemetry.open_span_names(),
        "trace_stats": machine.trace.stats(),
        "events": events,
        "metrics": machine.telemetry.registry.snapshot(),
        "hardware": machine.telemetry.hardware_stats(),
        "dump": machine.state_dump(),
    }


def write_bundle(document: dict,
                 directory: str | pathlib.Path | None = None
                 ) -> pathlib.Path:
    """Write one bundle; the filename folds in the state hash."""
    global _emitted
    _emitted += 1
    directory = pathlib.Path(directory) if directory else forensics_dir()
    directory.mkdir(parents=True, exist_ok=True)
    name = (f"forensic-{_emitted:03d}-{document['label']}"
            f"-{document['state_hash'][:12]}.json")
    path = directory / name
    path.write_text(json.dumps(document, indent=2, sort_keys=True,
                               default=str) + "\n")
    return path


def load_bundle(path: str | pathlib.Path) -> dict:
    """Read a forensic bundle from disk, validating its kind."""
    document = json.loads(pathlib.Path(path).read_text())
    if document.get("kind") != BUNDLE_KIND:
        raise ValueError(f"not a forensic bundle: {path}")
    return document


def render_bundle(document: dict, *, events: int = 20,
                  verbose: bool = False) -> str:
    """The ``inspect`` CLI's human-readable rendering."""
    lines = [f"forensic bundle: {document['label']}"]
    error = document.get("error")
    if error:
        code = f" [{error['code']}]" if error.get("code") else ""
        lines.append(f"error: {error['type']}{code}: {error['message']}")
    lines.append(f"state hash: {document['state_hash']}")
    for name, digest in sorted(document["state_fingerprint"].items()):
        lines.append(f"  {name:<10} {digest}")
    cycles = document["cycles"]
    lines.append(f"cycles: {cycles['total']:,.0f} total")
    if document["open_spans"]:
        lines.append("open spans (outermost first):")
        for name in document["open_spans"]:
            lines.append(f"  {name}")
    stats = document["trace_stats"]
    lines.append(f"trace: {stats['recorded']} recorded, "
                 f"{stats['dropped']} dropped, "
                 f"{stats['entries']}/{stats['capacity']} resident")
    tail = document["events"][-events:]
    if tail:
        lines.append(f"last {len(tail)} events:")
        lines.extend(f"  {e}" for e in tail)
    if verbose:
        dump = document.get("dump", {})
        lines.append("state dump:")
        lines.append(json.dumps(dump, indent=2, sort_keys=True,
                                default=str))
    return "\n".join(lines)


# -- emission hooks ----------------------------------------------------------

def _active_recorder():
    from repro.flightrec import recorder
    return recorder.current()


def emission_enabled() -> bool:
    """Bundles are emitted iff recording is on or CI asked for them."""
    return _active_recorder() is not None \
        or bool(os.environ.get(FORENSICS_DIR_ENV))


def emit_for_machine(machine, error: BaseException | None = None,
                     *, label: str = "machine") -> pathlib.Path | None:
    """Write one bundle for ``machine`` if emission is enabled.

    When a recorder is active, the bundle's event tail comes from its
    lossless journal instead of the (possibly wrapped) trace ring.  The
    bundle path is attached to the exception as ``forensic_bundle``.
    """
    if not emission_enabled():
        return None
    events = None
    rec = _active_recorder()
    if rec is not None and machine in rec.machines:
        slot = rec.machines.index(machine)
        events = [str(e) for e in rec.journal.events
                  if e.machine == slot][-DEFAULT_EVENT_TAIL:]
        label = rec.journal.header["machines"][slot]["label"]
    path = write_bundle(build_bundle(machine, error, events=events,
                                     label=label))
    if error is not None:
        try:
            error.forensic_bundle = str(path)
        except AttributeError:
            pass                     # exceptions with __slots__
    return path


def emit_for_recorder(rec, error: BaseException | None = None
                      ) -> list[pathlib.Path]:
    """One bundle per machine the recorder attached (crash path)."""
    paths = []
    for machine in rec.machines:
        path = emit_for_machine(machine, error)
        if path is not None:
            paths.append(path)
    return paths
