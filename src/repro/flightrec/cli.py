"""The flight-recorder CLI: ``python -m repro.flightrec <command>``.

* ``record <scenario> -o journal.json`` — run a scenario under the
  recorder and write its journal;
* ``replay <journal>`` — re-execute and bisect to the first divergence
  (exit 0: bit-identical, 1: diverged, 2: error); ``--perturb-category``
  injects a cycle perturbation to *prove* the bisection works;
* ``inspect <bundle>`` — render a forensic bundle;
* ``info <journal>`` — header/summary of a journal;
* ``scenarios`` — every recordable scenario id.
"""

from __future__ import annotations

import argparse
import json
import sys


def _cmd_scenarios(args) -> int:
    from repro.flightrec.scenario import scenario_ids
    for scenario in scenario_ids():
        print(f"  {scenario}")
    return 0


def _cmd_record(args) -> int:
    from repro.flightrec.scenario import run_recorded
    journal, _figures = run_recorded(
        args.scenario, json.loads(args.args),
        checkpoint_every=args.checkpoint_every)
    path = journal.write(args.output)
    summary = journal.summary
    print(f"recorded {summary['total_events']} events, "
          f"{len(journal.checkpoints)} checkpoints -> {path}")
    for m in summary["machines"]:
        print(f"  {m['label']}: {m['total_cycles']:,.0f} cycles, "
              f"state {m['state_hash'][:16]}…")
    return 0


def _cmd_replay(args) -> int:
    from repro.flightrec.journal import Journal
    from repro.flightrec.replay import replay_journal
    journal = Journal.load(args.journal)
    perturb = None
    if args.perturb_category:
        from repro.flightrec.perturb import perturb_cycles
        perturb = perturb_cycles(args.perturb_category,
                                 extra=args.perturb_cycles,
                                 at=args.perturb_at)
    result = replay_journal(journal, window=args.window, perturb=perturb)
    print(result.render(verbose=args.verbose))
    if perturb is not None and not perturb.fired:
        print(f"warning: perturbation never fired (no charge matched "
              f"{args.perturb_category!r} {args.perturb_at} times)",
              file=sys.stderr)
    return 0 if result.ok else 1


def _cmd_inspect(args) -> int:
    from repro.flightrec.forensics import load_bundle, render_bundle
    document = load_bundle(args.bundle)
    print(render_bundle(document, events=args.events,
                        verbose=args.verbose))
    return 0


def _cmd_info(args) -> int:
    from repro.flightrec.journal import Journal
    journal = Journal.load(args.journal)
    header = journal.header
    print(f"scenario:         {header['scenario']}")
    print(f"args:             {header.get('args') or {}}")
    print(f"checkpoint every: {header.get('checkpoint_every')}")
    prov = header.get("provenance", {})
    print(f"costs:            {prov.get('costs_fingerprint')}")
    print(f"events:           {len(journal.events)}")
    print(f"checkpoints:      {len(journal.checkpoints)} "
          f"(hash chain verified)")
    for entry in header.get("machines", []):
        print(f"machine:          {entry['label']}")
    for m in journal.summary.get("machines", []):
        print(f"  {m['label']}: {m['total_cycles']:,.0f} cycles, "
              f"{m['events']} events, state {m['state_hash']}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.flightrec",
        description="deterministic record/replay + crash forensics for "
                    "the simulated platform")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("scenarios", help="list recordable scenarios")
    p.set_defaults(fn=_cmd_scenarios)

    p = sub.add_parser("record", help="record a scenario into a journal")
    p.add_argument("scenario", help="scenario id (e.g. "
                                    "bench:table1_edge_calls)")
    p.add_argument("-o", "--output", default="journal.json",
                   metavar="PATH")
    p.add_argument("--args", default="{}", metavar="JSON",
                   help="scenario arguments as a JSON object")
    p.add_argument("--checkpoint-every", type=int, default=1024,
                   metavar="N", help="events between state checkpoints")
    p.set_defaults(fn=_cmd_record)

    p = sub.add_parser("replay",
                       help="re-execute a journal and bisect divergence "
                            "(exit 1 when runs differ)")
    p.add_argument("journal")
    p.add_argument("--window", type=int, default=8, metavar="N",
                   help="events of context around the divergence")
    p.add_argument("--perturb-category", default=None, metavar="CAT",
                   help="inject extra cycles into charges of this "
                        "category (testing the bisection)")
    p.add_argument("--perturb-cycles", type=float, default=1.0,
                   metavar="N")
    p.add_argument("--perturb-at", type=int, default=1, metavar="K",
                   help="inject on the K-th matching charge")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=_cmd_replay)

    p = sub.add_parser("inspect", help="render a forensic bundle")
    p.add_argument("bundle")
    p.add_argument("--events", type=int, default=20, metavar="N")
    p.add_argument("--verbose", action="store_true",
                   help="include the full state dump")
    p.set_defaults(fn=_cmd_inspect)

    p = sub.add_parser("info", help="show a journal's header/summary")
    p.add_argument("journal")
    p.set_defaults(fn=_cmd_info)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
