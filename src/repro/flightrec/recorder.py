"""The flight recorder: machine attachment, taps, checkpoint cadence.

A :class:`FlightRecorder` is activated process-wide (mirroring
``repro.telemetry.sink``): every :class:`~repro.hw.machine.Machine` built
while one is active attaches itself.  Attachment enables the machine's
telemetry (spans and the trace ring observe the simulated clock — they
never charge cycles) and installs a *tap* on the trace ring, so the
journal sees every event even after the bounded ring wraps.

Every ``checkpoint_every`` journaled events the recorder folds
``Machine.state_hash()`` into the journal's hash chain.  The hash is a
pure read of simulator state — recording perturbs no cycle count, which
the zero-perturbation test pins.
"""

from __future__ import annotations

from repro.flightrec.journal import Journal, JournalEvent

DEFAULT_CHECKPOINT_EVERY = 1024

_ACTIVE: "FlightRecorder | None" = None


def _config_document(config) -> dict:
    """A MachineConfig as JSON-ready data (tpm_seed becomes hex)."""
    import dataclasses
    doc = dataclasses.asdict(config)
    doc["tpm_seed"] = config.tpm_seed.hex()
    return doc


class FlightRecorder:
    """Record one scenario run into a :class:`Journal`."""

    def __init__(self, scenario: str, args: dict | None = None, *,
                 checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY) -> None:
        if checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        from repro.bench.artifact import costs_fingerprint
        self.checkpoint_every = checkpoint_every
        self.journal = Journal({
            "scenario": scenario,
            "args": args or {},
            "checkpoint_every": checkpoint_every,
            "provenance": {"costs_fingerprint": costs_fingerprint()},
            "machines": [],
        })
        self._machines: list = []          # slot index -> Machine
        self._since_checkpoint: list[int] = []
        self._finished = False

    @property
    def machines(self) -> list:
        return list(self._machines)

    def attach_machine(self, machine) -> int:
        """Start journaling one machine; returns its slot index."""
        slot = len(self._machines)
        self._machines.append(machine)
        self._since_checkpoint.append(0)
        self.journal.header["machines"].append({
            "label": f"machine-{slot + 1}",
            "config": _config_document(machine.config),
        })
        machine.telemetry.enable()
        ring = machine.trace

        def on_event(event, _slot=slot, _machine=machine,
                     _ring=ring) -> None:
            self.journal.add_event(JournalEvent(
                _slot, event.seq, event.cycle, event.kind, event.detail,
                event.cause))
            self._since_checkpoint[_slot] += 1
            if self._since_checkpoint[_slot] >= self.checkpoint_every:
                self._since_checkpoint[_slot] = 0
                self.journal.add_checkpoint(
                    _slot, event.seq, event.cycle, _machine.state_hash())

        ring.tap(on_event)
        return slot

    def finish(self, figures=None) -> Journal:
        """Take final checkpoints and summarize; idempotent."""
        if self._finished:
            return self.journal
        self._finished = True
        from repro.hw import statehash
        machines_summary = []
        for slot, machine in enumerate(self._machines):
            ring = machine.trace
            self.journal.add_checkpoint(
                slot, max(ring.total_recorded - 1, 0),
                int(machine.cycles.read()), machine.state_hash())
            machines_summary.append({
                "label": self.journal.header["machines"][slot]["label"],
                "total_cycles": machine.cycles.total,
                "events": ring.total_recorded,
                "state_hash": machine.state_hash(),
            })
        self.journal.summary = {
            "machines": machines_summary,
            "total_events": len(self.journal.events),
        }
        if figures is not None:
            self.journal.summary["figures_digest"] = \
                statehash.digest(_jsonable_figures(figures))
        return self.journal


def _jsonable_figures(figures):
    from repro.bench.artifact import _jsonable
    return _jsonable(figures)


# -- process-wide activation (mirrors repro.telemetry.sink) ------------------

def activate(recorder: FlightRecorder) -> None:
    """Make ``recorder`` the process-wide active flight recorder."""
    global _ACTIVE
    _ACTIVE = recorder


def deactivate() -> None:
    """Clear the process-wide active recorder."""
    global _ACTIVE
    _ACTIVE = None


def current() -> FlightRecorder | None:
    """The active recorder, or None when recording is not requested."""
    return _ACTIVE


class record:
    """Context manager recording the enclosed run::

        with record("bench:table1_edge_calls") as rec:
            figures = run()
        rec.finish(figures).write("journal.json")
    """

    def __init__(self, scenario: str, args: dict | None = None, *,
                 checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY) -> None:
        self.recorder = FlightRecorder(scenario, args,
                                       checkpoint_every=checkpoint_every)

    def __enter__(self) -> FlightRecorder:
        activate(self.recorder)
        return self.recorder

    def __exit__(self, exc_type, exc, tb) -> bool:
        deactivate()
        return False
