"""Scenario resolution: what a journal re-executes.

A journal header names its scenario by id so replay can re-run the exact
workload:

* ``bench:<name>`` — a benchmark from the ``repro.bench`` registry
  (``run_experiment()`` of ``benchmarks/bench_<name>.py``);
* anything else — a scenario registered programmatically with
  :func:`register` (tests use this to record custom workloads).

Scenario functions take one ``args`` dict and return their figures; the
machines they build attach to the active recorder automatically, so a
scenario needs no recorder plumbing of its own.
"""

from __future__ import annotations

from repro.flightrec import forensics
from repro.flightrec.journal import Journal
from repro.flightrec.recorder import (DEFAULT_CHECKPOINT_EVERY,
                                      FlightRecorder, record)

_SCENARIOS: dict[str, object] = {}


class ScenarioError(ValueError):
    """An unknown or unrunnable scenario id."""


def register(name: str, fn) -> None:
    """Register a programmatic scenario (``fn(args) -> figures``)."""
    _SCENARIOS[name] = fn


def unregister(name: str) -> None:
    """Remove a programmatic scenario; unknown names are a no-op."""
    _SCENARIOS.pop(name, None)


def scenario_ids() -> list[str]:
    """Every runnable scenario id (bench ones first)."""
    from repro.bench.registry import REGISTRY
    return ([f"bench:{name}" for name in REGISTRY]
            + sorted(_SCENARIOS))


def resolve(scenario: str):
    """The callable for one scenario id."""
    if scenario.startswith("bench:"):
        bench = scenario[len("bench:"):]
        from repro.bench.registry import REGISTRY
        from repro.bench.runner import _ensure_benchmarks_importable
        spec = REGISTRY.get(bench)
        if spec is None:
            raise ScenarioError(f"unknown benchmark scenario {bench!r}")
        _ensure_benchmarks_importable()
        return lambda args: spec.run()
    fn = _SCENARIOS.get(scenario)
    if fn is None:
        raise ScenarioError(f"unknown scenario {scenario!r}")
    return fn


def run_recorded(scenario: str, args: dict | None = None, *,
                 checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
                 ) -> tuple[Journal, object]:
    """Run one scenario under a fresh recorder; returns (journal, figures).

    On an unhandled exception a forensic bundle is written for every
    attached machine (honoring ``REPRO_FORENSICS_DIR``) before the
    exception propagates — a crashed recording still leaves evidence.
    """
    fn = resolve(scenario)
    with record(scenario, args, checkpoint_every=checkpoint_every) as rec:
        try:
            figures = fn(dict(args or {}))
        except Exception as exc:
            forensics.emit_for_recorder(rec, exc)
            raise
    return rec.finish(figures), figures
