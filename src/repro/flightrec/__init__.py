"""The flight recorder: deterministic record/replay and crash forensics.

Three capabilities over the simulated platform:

* **record** — journal every trace-ring event (losslessly, via a ring
  tap) plus periodic hash-chained machine checkpoints built on
  ``Machine.state_hash()``, with all nondeterministic inputs (machine
  config, TPM seed) captured in the journal header;
* **replay** — re-run the recorded scenario and bisect to the *first*
  divergent event, checkpoint chain first (binary search), then
  event-by-event inside the narrowed window;
* **forensics** — on a ``SanitizerViolation`` or unhandled fault, emit a
  bundle with the machine state hash, CPU snapshot, page-table and TLB
  dumps, open span stack, the last N journal events, and a metrics
  snapshot — inspectable with ``python -m repro.flightrec inspect``.

Recording is a pure observer: it never charges cycles and its disabled
path is a single branch, so Table 1/2 numbers are bit-identical with
recording on or off (pinned by test).
"""

from repro.flightrec.journal import (Checkpoint, Journal, JournalError,
                                     JournalEvent)
from repro.flightrec.recorder import FlightRecorder, record
from repro.flightrec.replay import Divergence, replay_journal

__all__ = [
    "Checkpoint", "Divergence", "FlightRecorder", "Journal",
    "JournalError", "JournalEvent", "record", "replay_journal",
]
