"""HyperEnclave reproduction: an open, cross-platform process-based TEE.

Reproduces *HyperEnclave: An Open and Cross-platform Trusted Execution
Environment* (USENIX ATC 2022) as a cycle-accounted full-system
simulation.  The usual entry point:

>>> from repro import TeePlatform, EnclaveImage
>>> platform = TeePlatform.hyperenclave()
>>> image = EnclaveImage.build(
...     "hello",
...     "enclave { trusted { public uint64 f(); }; untrusted { }; };",
...     {"f": lambda ctx: 42})
>>> platform.load_enclave(image).proxies.f()
42

Sub-packages: ``repro.hw`` (simulated hardware), ``repro.monitor``
(RustMonitor), ``repro.osim`` (the untrusted primary OS), ``repro.sdk``
(the SGX-compatible enclave SDK), ``repro.libos`` (Occlum-like LibOS),
``repro.apps`` (evaluation workloads), ``repro.attacks`` (security
scenarios), ``repro.ports`` (ARM/RISC-V port models).
"""

from repro.monitor.structs import EnclaveConfig, EnclaveMode
from repro.platform import TeePlatform
from repro.sdk.image import EnclaveImage

__version__ = "1.0.0"

__all__ = ["TeePlatform", "EnclaveImage", "EnclaveConfig", "EnclaveMode",
           "__version__"]
