"""The untrusted runtime (uRTS): enclave loading and edge-call dispatch.

``create_enclave`` walks the full paper flow: ioctls to
``/dev/hyper_enclave`` for ECREATE/EADD/EINIT, an ``mmap(MAP_POPULATE)``'d
and pinned marshalling buffer whose base/size go to RustMonitor at EINIT
(Sec 5.3), and a signal handler registered for two-phase exception
handling.

Edge calls are interpreted straight from the EDL ``FuncSpec``: scalars
travel in "registers", buffers through the marshalling buffer, with the
same copy discipline as the modified SGX SDK — ``[in]`` data is staged
app->msbuf->enclave, ``[out]`` data enclave->msbuf->app, and
``sgx_ocalloc`` frames for OCALLs are carved directly out of the buffer
(which is why OCALLs show no marshalling overhead in Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SdkError, SecurityViolation
from repro.hw import costs
from repro.hw.memmodel import EpcModel, MemorySubsystem
from repro.hw.phys import PAGE_SIZE
from repro.monitor.structs import EnclaveMode, PagePerm, PageType
from repro.osim.kmod import Ioctl
from repro.sdk.edl import Direction, FuncSpec
from repro.sdk.image import EnclaveImage, compute_layout
from repro.sdk.trts import EnclaveContext

# SDK step slices (see repro.hw.costs.ECALL_SDK_STEPS).
_URTS_PRE = costs.ECALL_SDK_STEPS[:2]
_TRTS_PRE = costs.ECALL_SDK_STEPS[2:5]
_TRTS_POST = costs.ECALL_SDK_STEPS[5:6]
_URTS_POST = costs.ECALL_SDK_STEPS[6:]
_OCALL_TRTS_PRE = costs.OCALL_SDK_STEPS[:2]
_OCALL_URTS = costs.OCALL_SDK_STEPS[2:3]
_OCALL_TRTS_POST = costs.OCALL_SDK_STEPS[3:]


def _charge_steps(machine, steps, category) -> None:
    # One summed charge per step list: costs are integers, so the total
    # and per-category breakdown match per-step charging exactly.
    total = 0
    for _, cyc in steps:
        total += cyc
    machine.cycles.charge(total, category)


def _charge_memcpy(machine, nbytes: int) -> None:
    lines = max(1, (nbytes + costs.CACHE_LINE - 1) // costs.CACHE_LINE)
    machine.cycles.charge(
        costs.MEMCPY_FIXED_CYCLES + lines * costs.MEMCPY_CYCLES_PER_LINE,
        "memcpy")
    machine.telemetry.count("sdk", "marshalling.bytes", nbytes)


class UntrustedRuntime:
    """Per-process uRTS (libsgx_urts.so equivalent)."""

    def __init__(self, machine, kernel, device, monitor, process) -> None:
        self.machine = machine
        self.kernel = kernel
        self.device = device
        self.monitor = monitor
        self.process = process

    def create_enclave(self, image: EnclaveImage, signing_key, *,
                       use_marshalling: bool = True) -> "EnclaveHandle":
        """Load, measure, and initialize an enclave from ``image``."""
        tel = self.machine.telemetry
        with tel.span("sdk.create_enclave", mode=image.config.mode.value), \
                tel.cause(f"create:{image.name}"):
            return self._do_create(image, signing_key,
                                   use_marshalling=use_marshalling)

    def _do_create(self, image: EnclaveImage, signing_key, *,
                   use_marshalling: bool) -> "EnclaveHandle":
        layout = compute_layout(image)
        sigstruct = image.sign(signing_key)

        eid = self.device.ioctl(self.process, Ioctl.ECREATE,
                                config=image.config,
                                size=layout.elrange_size)
        base = self.monitor.enclaves[eid].secs.base
        for page in layout.pages:
            if page.page_type is PageType.TCS:
                self.device.ioctl(self.process, Ioctl.ADD_TCS,
                                  enclave_id=eid, offset=page.offset,
                                  entry_va=base + layout.entry_offset)
            else:
                self.device.ioctl(self.process, Ioctl.EADD,
                                  enclave_id=eid, offset=page.offset,
                                  content=page.content,
                                  page_type=page.page_type,
                                  perms=page.perms)
        self.device.ioctl(self.process, Ioctl.RESERVE_REGION,
                          enclave_id=eid,
                          start_va=base + layout.heap_start,
                          size=layout.heap_size, perms=PagePerm.RW)

        # The marshalling buffer: mmap(MAP_POPULATE) + pin + register.
        ms_size = image.config.marshalling_buffer_size
        vma = self.kernel.mmap(self.process, ms_size, populate=True)
        self.device.ioctl(self.process, Ioctl.PIN_BUFFER, vma=vma)
        marshalling = (vma.start, ms_size, list(vma.frames))

        self.device.ioctl(self.process, Ioctl.EINIT, enclave_id=eid,
                          sigstruct=sigstruct, marshalling=marshalling)

        handle = EnclaveHandle(self, image, layout, eid, vma,
                               use_marshalling=use_marshalling)
        self.process.enclaves[eid] = handle
        return handle


class EnclaveHandle:
    """An application's view of one loaded enclave."""

    # The fixed app-side return point registered as the AEP at EENTER.
    AEP = 0x0040_0F00

    def __init__(self, urts: UntrustedRuntime, image: EnclaveImage, layout,
                 enclave_id: int, msbuf_vma, *, use_marshalling: bool) -> None:
        self.urts = urts
        self.machine = urts.machine
        self.kernel = urts.kernel
        self.monitor = urts.monitor
        self.world = urts.monitor.world
        self.process = urts.process
        self.image = image
        self.layout = layout
        self.enclave_id = enclave_id
        self.enclave = urts.monitor.enclaves[enclave_id]
        self.msbuf_vma = msbuf_vma
        self.use_marshalling = use_marshalling
        self.ocall_impls: dict[str, callable] = {}
        self.destroyed = False
        # Switchless-call state (see enable_switchless).
        self.switchless_workers = 0
        self.switchless_worker_cycles = 0.0
        self.switchless_calls = 0

        mode = image.config.mode
        self.enclave_mem = MemorySubsystem(
            self.machine.cycles,
            self.machine.encryption,
            llc=self.machine.llc,
            tlb=self.machine.tlb,
            epc=EpcModel(costs.SGX_EPC_SIZE) if mode is EnclaveMode.SGX
            else None,
            nested_paging=mode in (EnclaveMode.GU, EnclaveMode.P),
            category="enclave-memory")
        self.enclave_mem.asid = enclave_id
        self.ctx = EnclaveContext(self)

        # Marshalling buffer regions: [ecall frames | ocall frames | user].
        size = msbuf_vma.size
        self._ecall_base = msbuf_vma.start
        self._ecall_limit = msbuf_vma.start + size // 2
        self._ocall_base = self._ecall_limit
        self._ocall_limit = msbuf_vma.start + 3 * size // 4
        self._user_base = self._ocall_limit
        self._user_limit = msbuf_vma.start + size
        self._ecall_cursor = self._ecall_base
        self._ocall_cursor = self._ocall_base
        self._user_cursor = self._user_base

        # Phase-1 exception handling: the uRTS registers signal handlers.
        from repro.osim.kernel import SIGILL, SIGSEGV
        self.process.register_signal_handler(SIGILL, self._on_signal)
        self.process.register_signal_handler(SIGSEGV, self._on_signal)

    # -- misc plumbing -----------------------------------------------------------

    def _on_signal(self, **info):
        # Phase one: the kernel delivered the AEX as a signal.  Phase two
        # (the internal ECALL) is driven by the tRTS in _two_phase_exception.
        return info

    def register_ocall(self, name: str, impl) -> None:
        self.image.edl.untrusted_by_name(name)   # must exist
        self.ocall_impls[name] = impl

    def app_read(self, va: int, size: int) -> bytes:
        return self.kernel.user_read(self.process, va, size)

    def app_write(self, va: int, data: bytes) -> None:
        self.kernel.user_write(self.process, va, data)

    def msbuf_user_alloc(self, size: int) -> int:
        """Allocate app-visible space *inside* the marshalling buffer for
        user_check parameters (the paper's added developer interface)."""
        size = (size + 15) & ~15
        if self._user_cursor + size > self._user_limit:
            raise SdkError("marshalling buffer user region exhausted")
        va = self._user_cursor
        self._user_cursor += size
        return va

    # -- ECALL -------------------------------------------------------------------

    def ecall(self, name: str, **kwargs):
        """Invoke a public trusted function.

        Returns the retval, or ``(retval, outs)`` when the function has
        ``[out]``/``[in,out]`` buffers.
        """
        if self.destroyed:
            raise SdkError("enclave has been destroyed")
        spec = self.image.edl.trusted_by_name(name)
        if not spec.public:
            raise SecurityViolation(
                f"ECALL to private trusted function {name!r}")
        func = self.image.trusted_funcs[name]

        tel = self.machine.telemetry
        tracer = tel.requests
        token = (tracer.begin_request(name, self.enclave_id)
                 if tracer is not None else None)
        error = False
        try:
            with tel.span("sdk.ecall", func=name, enclave=self.enclave_id), \
                    tel.cause(f"ecall:{name}"):
                return self._do_ecall(spec, func, kwargs)
        except BaseException:
            error = True
            raise
        finally:
            if tracer is not None:
                tracer.end_request(token, error=error)

    def _do_ecall(self, spec: FuncSpec, func, kwargs):
        _charge_steps(self.machine, _URTS_PRE, "sdk-ecall")
        tcs = self.enclave.acquire_tcs()
        frame_save = self._ecall_cursor
        try:
            staged = self._stage_in(spec, kwargs)
            self.world.eenter(self.enclave, tcs, self.AEP)
            self.world.charge_ecall_warmup(self.enclave)
            prev_tcs = self.ctx.current_tcs
            self.ctx.current_tcs = tcs
            try:
                _charge_steps(self.machine, _TRTS_PRE, "sdk-ecall")
                args, out_bufs = self._unmarshal_trusted(spec, staged)
                retval = func(self.ctx, **args)
                self._marshal_out_trusted(spec, staged, out_bufs)
                _charge_steps(self.machine, _TRTS_POST, "sdk-ecall")
            finally:
                self.ctx.current_tcs = prev_tcs
            self.world.eexit(self.enclave, self.AEP)
            _charge_steps(self.machine, _URTS_POST, "sdk-ecall")
            outs = self._copy_out_to_app(spec, staged)
        finally:
            self._ecall_cursor = frame_save
            self.enclave.release_tcs(tcs)

        if outs:
            return retval, outs
        return retval

    def _msbuf_alloc_ecall(self, size: int) -> int:
        size = (size + 15) & ~15
        if self._ecall_cursor + size > self._ecall_limit:
            raise SdkError("marshalling buffer overflow on ECALL frame")
        va = self._ecall_cursor
        self._ecall_cursor += size
        return va

    def _buffer_size(self, spec: FuncSpec, param, kwargs) -> int:
        if isinstance(param.size_expr, int):
            return param.size_expr
        if param.size_expr is not None:
            return int(kwargs[param.size_expr])
        value = kwargs.get(param.name)
        if param.is_string and value is not None:
            return len(value)
        raise SdkError(f"{spec.name}.{param.name}: cannot determine size")

    def _stage_in(self, spec: FuncSpec, kwargs) -> dict:
        """App side: validate args and stage [in] data toward the enclave."""
        staged: dict[str, dict] = {"scalars": {}, "buffers": {}}
        for param in spec.params:
            if not param.is_buffer:
                if param.name not in kwargs:
                    raise SdkError(f"{spec.name}: missing argument "
                                   f"{param.name!r}")
                staged["scalars"][param.name] = int(kwargs[param.name])
                continue
            if param.direction is Direction.USER_CHECK:
                staged["buffers"][param.name] = {
                    "user_va": int(kwargs[param.name])}
                continue
            size = self._buffer_size(spec, param, kwargs)
            entry: dict = {"size": size}
            if param.direction in (Direction.IN, Direction.INOUT):
                data = bytes(kwargs[param.name])
                if len(data) != size:
                    raise SdkError(
                        f"{spec.name}.{param.name}: buffer is {len(data)} "
                        f"bytes but size says {size}")
                if self.use_marshalling:
                    # Copy 1: application -> marshalling buffer.
                    va = self._msbuf_alloc_ecall(size)
                    self.app_write(va, data)
                    _charge_memcpy(self.machine, size)
                    entry["ms_va"] = va
                else:
                    entry["direct"] = data
            elif param.direction is Direction.OUT and self.use_marshalling:
                entry["ms_va"] = self._msbuf_alloc_ecall(size)
            staged["buffers"][param.name] = entry
        return staged

    def _unmarshal_trusted(self, spec: FuncSpec, staged):
        """Enclave side: pull [in] data across, build the call arguments."""
        args: dict[str, object] = dict(staged["scalars"])
        out_bufs: dict[str, bytearray] = {}
        for param in spec.params:
            if not param.is_buffer:
                continue
            entry = staged["buffers"][param.name]
            if param.direction is Direction.USER_CHECK:
                args[param.name] = entry["user_va"]
                continue
            size = entry["size"]
            if param.direction in (Direction.IN, Direction.INOUT):
                if self.use_marshalling:
                    # Copy 2: marshalling buffer -> enclave memory.
                    data = self.ctx.read_stream(entry["ms_va"], size)
                else:
                    data = entry["direct"]
                    enclave_va = self.ctx.malloc(size)
                    self.ctx.write_stream(enclave_va, data)
                _charge_memcpy(self.machine, size)
                if param.direction is Direction.INOUT:
                    buf = bytearray(data)
                    out_bufs[param.name] = buf
                    args[param.name] = buf
                else:
                    args[param.name] = data
            else:   # OUT
                buf = bytearray(size)
                out_bufs[param.name] = buf
                args[param.name] = buf
        return args, out_bufs

    def _marshal_out_trusted(self, spec: FuncSpec, staged, out_bufs) -> None:
        """Enclave side: push [out] data into the marshalling buffer."""
        for param in spec.params:
            if param.name not in out_bufs:
                continue
            entry = staged["buffers"][param.name]
            data = bytes(out_bufs[param.name])
            if self.use_marshalling:
                self.ctx.write_stream(entry["ms_va"], data)
            else:
                entry["direct_out"] = data
            _charge_memcpy(self.machine, len(data))

    def _copy_out_to_app(self, spec: FuncSpec, staged) -> dict[str, bytes]:
        """App side: read [out] results back."""
        outs: dict[str, bytes] = {}
        for param in spec.params:
            if param.direction not in (Direction.OUT, Direction.INOUT):
                continue
            entry = staged["buffers"][param.name]
            if self.use_marshalling:
                outs[param.name] = self.app_read(entry["ms_va"],
                                                 entry["size"])
                _charge_memcpy(self.machine, entry["size"])
            else:
                outs[param.name] = entry.get("direct_out", b"")
        return outs

    # -- OCALL -------------------------------------------------------------------

    def enable_switchless(self, workers: int = 1) -> None:
        """Turn on switchless OCALLs (Tian et al. [66]).

        ``workers`` untrusted worker threads busy-poll a request ring in
        the marshalling buffer; OCALLs stop paying the world switch and
        instead pay ring synchronization — while the workers burn a core
        each (tracked in :attr:`switchless_worker_cycles`).
        """
        if workers < 1:
            raise SdkError("switchless mode needs at least one worker")
        self.switchless_workers = workers

    def disable_switchless(self) -> None:
        self.switchless_workers = 0

    def dispatch_ocall(self, ctx: EnclaveContext, name: str, kwargs):
        """Called by the tRTS: leave the enclave, run the untrusted impl,
        re-enter.  sgx_ocalloc frames live directly in the marshalling
        buffer, so no extra copy happens (Sec 5.3).

        With switchless mode on, the world switch is replaced by a
        shared-ring handoff to a polling worker.
        """
        spec = self.image.edl.untrusted_by_name(name)
        impl = self.ocall_impls.get(name)
        if impl is None:
            raise SdkError(f"no OCALL implementation registered for {name!r}")
        tcs = ctx.current_tcs
        if tcs is None:
            raise SdkError("OCALL outside an ECALL")
        switchless = self.switchless_workers > 0

        tel = self.machine.telemetry
        tracer = tel.requests
        token = (tracer.begin_segment("ocall", name)
                 if tracer is not None else None)
        try:
            with tel.span("sdk.ocall", func=name, enclave=self.enclave_id,
                          switchless=switchless), \
                    tel.cause(f"ocall:{name}"):
                return self._do_ocall(ctx, spec, impl, tcs, switchless, name,
                                      kwargs)
        finally:
            if tracer is not None:
                tracer.end_segment(token)

    def _do_ocall(self, ctx: EnclaveContext, spec: FuncSpec, impl, tcs,
                  switchless: bool, name: str, kwargs):
        if not switchless:
            _charge_steps(self.machine, _OCALL_TRTS_PRE, "sdk-ocall")
        frame_save = self._ocall_cursor
        try:
            app_args: dict[str, object] = {}
            out_entries: dict[str, tuple[int, int]] = {}
            for param in spec.params:
                if not param.is_buffer:
                    app_args[param.name] = int(kwargs[param.name])
                    continue
                if param.direction is Direction.USER_CHECK:
                    app_args[param.name] = int(kwargs[param.name])
                    continue
                size = self._buffer_size(spec, param, kwargs)
                va = self._msbuf_ocalloc(size)
                if param.direction in (Direction.IN, Direction.INOUT):
                    # The single copy: enclave -> ocalloc'd msbuf frame.
                    data = bytes(kwargs[param.name])
                    ctx.write_stream(va, data)
                    _charge_memcpy(self.machine, size)
                if param.direction in (Direction.OUT, Direction.INOUT):
                    out_entries[param.name] = (va, size)
                app_args[param.name] = self.app_read(va, size) \
                    if param.direction in (Direction.IN, Direction.INOUT) \
                    else None

            if switchless:
                # Enqueue -> worker pickup -> impl -> completion spin.
                self.machine.cycles.charge(costs.SWITCHLESS_ENQUEUE_CYCLES,
                                           "switchless")
                self.machine.cycles.charge(
                    costs.SWITCHLESS_POLL_INTERVAL_CYCLES / 2, "switchless")
                with self.machine.cycles.measure() as span:
                    result = impl(**app_args)
                self.switchless_worker_cycles += span.elapsed
                self.switchless_calls += 1
            else:
                self.world.eexit(self.enclave, self.AEP)
                _charge_steps(self.machine, _OCALL_URTS, "sdk-ocall")
                result = impl(**app_args)
            retval, impl_outs = _split_ocall_result(result, out_entries)
            for pname, data in impl_outs.items():
                va, size = out_entries[pname]
                if len(data) > size:
                    raise SdkError(f"OCALL {name}.{pname}: output larger "
                                   f"than the declared buffer")
                self.app_write(va, data)
            if switchless:
                self.machine.cycles.charge(costs.SWITCHLESS_COMPLETE_CYCLES,
                                           "switchless")
            else:
                self.world.eenter(self.enclave, tcs, self.AEP)
                self.world.charge_ocall_warmup(self.enclave)
                _charge_steps(self.machine, _OCALL_TRTS_POST, "sdk-ocall")

            outs = {pname: ctx.read_stream(va, size)
                    for pname, (va, size) in out_entries.items()}
        finally:
            self._ocall_cursor = frame_save

        if outs:
            return retval, outs
        return retval

    def _msbuf_ocalloc(self, size: int) -> int:
        size = (size + 15) & ~15
        if self._ocall_cursor + size > self._ocall_limit:
            raise SdkError("marshalling buffer overflow on OCALL frame")
        va = self._ocall_cursor
        self._ocall_cursor += size
        return va

    # -- teardown -----------------------------------------------------------------

    def destroy(self) -> None:
        if not self.destroyed:
            self.urts.device.ioctl(self.process, Ioctl.EREMOVE,
                                   enclave_id=self.enclave_id)
            self.destroyed = True


def _split_ocall_result(result, out_entries):
    if isinstance(result, tuple):
        retval, outs = result
        missing = set(outs) - set(out_entries)
        if missing:
            raise SdkError(f"OCALL returned unknown out params {missing}")
        return retval, outs
    return result, {}
