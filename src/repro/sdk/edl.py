"""EDL (Enclave Definition Language) parser.

A faithful subset of the SGX SDK's EDL grammar:

.. code-block:: text

    enclave {
        trusted {
            public uint64 put([in, size=len] bytes key, uint64 len);
            public uint64 sum([in, count=n] bytes values, uint64 n);
            uint64 internal_handler();            /* private: not callable */
        };
        untrusted {
            uint64 ocall_write([in, size=n] bytes data, uint64 n);
            void ocall_log([string] bytes message);
        };
    };

Types: ``void``, ``uint64``, ``int64``, ``bytes`` (a sized buffer).
Buffer attributes: ``[in]``, ``[out]``, ``[in, out]``, ``[user_check]``,
``[string]``, with ``size=<param|literal>`` / ``count=<param|literal>``.
``user_check`` buffers are passed as raw pointers with **no** copy and no
bounds check — exactly the SGX footgun the paper's marshalling-buffer
design has to accommodate (Sec 5.3).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

from repro.errors import EdlError

_TOKEN_RE = re.compile(r"""
    (?P<comment>/\*.*?\*/|//[^\n]*) |
    (?P<word>[A-Za-z_][A-Za-z0-9_]*) |
    (?P<number>\d+) |
    (?P<symbol>[{}()\[\];,=*]) |
    (?P<space>\s+) |
    (?P<bad>.)
""", re.VERBOSE | re.DOTALL)

SCALAR_TYPES = {"uint64", "int64"}
ALL_TYPES = SCALAR_TYPES | {"void", "bytes"}


class Direction(enum.Enum):
    """How a buffer parameter crosses the boundary."""

    NONE = "none"            # scalar
    IN = "in"                # copied into the enclave
    OUT = "out"              # copied back out
    INOUT = "inout"          # both
    USER_CHECK = "user_check"  # raw pointer, no copy, no checks


@dataclass(frozen=True)
class ParamSpec:
    """One parameter of an edge function."""

    name: str
    type: str
    direction: Direction = Direction.NONE
    size_expr: str | int | None = None   # parameter name or literal
    is_string: bool = False

    @property
    def is_buffer(self) -> bool:
        return self.type == "bytes"


@dataclass(frozen=True)
class FuncSpec:
    """One trusted or untrusted function."""

    name: str
    return_type: str
    params: tuple[ParamSpec, ...]
    public: bool = False

    def param(self, name: str) -> ParamSpec:
        for p in self.params:
            if p.name == name:
                return p
        raise EdlError(f"{self.name}: no parameter named {name!r}")


@dataclass(frozen=True)
class EdlInterface:
    """The parsed enclave interface."""

    trusted: tuple[FuncSpec, ...]
    untrusted: tuple[FuncSpec, ...]

    def trusted_by_name(self, name: str) -> FuncSpec:
        for f in self.trusted:
            if f.name == name:
                return f
        raise EdlError(f"no trusted function {name!r}")

    def untrusted_by_name(self, name: str) -> FuncSpec:
        for f in self.untrusted:
            if f.name == name:
                return f
        raise EdlError(f"no untrusted function {name!r}")


def _tokenize(text: str) -> list[str]:
    tokens = []
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        if kind in ("space", "comment"):
            continue
        if kind == "bad":
            raise EdlError(f"unexpected character {match.group()!r}")
        tokens.append(match.group())
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise EdlError("unexpected end of EDL")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise EdlError(f"expected {token!r}, got {got!r}")

    # -- grammar ---------------------------------------------------------------

    def parse(self) -> EdlInterface:
        self.expect("enclave")
        self.expect("{")
        trusted: list[FuncSpec] = []
        untrusted: list[FuncSpec] = []
        while self.peek() != "}":
            section = self.next()
            if section not in ("trusted", "untrusted"):
                raise EdlError(f"expected trusted/untrusted, got {section!r}")
            self.expect("{")
            funcs = trusted if section == "trusted" else untrusted
            while self.peek() != "}":
                funcs.append(self._function(in_trusted=(section == "trusted")))
            self.expect("}")
            self.expect(";")
        self.expect("}")
        self.expect(";")
        if self.peek() is not None:
            raise EdlError(f"trailing tokens after enclave block: "
                           f"{self.peek()!r}")
        interface = EdlInterface(tuple(trusted), tuple(untrusted))
        _validate(interface)
        return interface

    def _function(self, *, in_trusted: bool) -> FuncSpec:
        public = False
        if self.peek() == "public":
            if not in_trusted:
                raise EdlError("'public' only applies to trusted functions")
            public = True
            self.next()
        return_type = self.next()
        if return_type not in SCALAR_TYPES | {"void"}:
            raise EdlError(f"bad return type {return_type!r}")
        name = self.next()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", name):
            raise EdlError(f"bad function name {name!r}")
        self.expect("(")
        params: list[ParamSpec] = []
        if self.peek() != ")":
            while True:
                params.append(self._param())
                if self.peek() == ",":
                    self.next()
                    continue
                break
        self.expect(")")
        self.expect(";")
        return FuncSpec(name=name, return_type=return_type,
                        params=tuple(params), public=public)

    def _param(self) -> ParamSpec:
        direction = Direction.NONE
        size_expr: str | int | None = None
        is_string = False
        if self.peek() == "[":
            self.next()
            attrs: list[str] = []
            while self.peek() != "]":
                attr = self.next()
                if attr in ("size", "count"):
                    self.expect("=")
                    value = self.next()
                    size_expr = int(value) if value.isdigit() else value
                elif attr == ",":
                    continue
                else:
                    attrs.append(attr)
            self.expect("]")
            direction, is_string = _resolve_attrs(attrs)
        param_type = self.next()
        if param_type not in ALL_TYPES - {"void"}:
            raise EdlError(f"bad parameter type {param_type!r}")
        name = self.next()
        return ParamSpec(name=name, type=param_type, direction=direction,
                         size_expr=size_expr, is_string=is_string)


def _resolve_attrs(attrs: list[str]) -> tuple[Direction, bool]:
    is_string = "string" in attrs
    flags = set(attrs) - {"string"}
    mapping = {
        frozenset(): Direction.IN if is_string else Direction.NONE,
        frozenset({"in"}): Direction.IN,
        frozenset({"out"}): Direction.OUT,
        frozenset({"in", "out"}): Direction.INOUT,
        frozenset({"user_check"}): Direction.USER_CHECK,
    }
    key = frozenset(flags)
    if key not in mapping:
        raise EdlError(f"unsupported attribute combination {sorted(attrs)}")
    return mapping[key], is_string


def _validate(interface: EdlInterface) -> None:
    for funcs in (interface.trusted, interface.untrusted):
        seen: set[str] = set()
        for func in funcs:
            if func.name in seen:
                raise EdlError(f"duplicate function {func.name!r}")
            seen.add(func.name)
            param_names = {p.name for p in func.params}
            if len(param_names) != len(func.params):
                raise EdlError(f"{func.name}: duplicate parameter names")
            for p in func.params:
                if p.is_buffer:
                    if p.direction is Direction.NONE:
                        raise EdlError(
                            f"{func.name}.{p.name}: buffers need a "
                            f"direction attribute")
                    if (p.size_expr is None and not p.is_string
                            and p.direction is not Direction.USER_CHECK):
                        raise EdlError(
                            f"{func.name}.{p.name}: sized buffers need "
                            f"size=/count=")
                    if isinstance(p.size_expr, str) and \
                            p.size_expr not in param_names:
                        raise EdlError(
                            f"{func.name}.{p.name}: size parameter "
                            f"{p.size_expr!r} not found")
                elif p.direction is not Direction.NONE or p.is_string:
                    raise EdlError(
                        f"{func.name}.{p.name}: attributes only apply to "
                        f"buffers")


def parse_edl(text: str) -> EdlInterface:
    """Parse EDL source into an :class:`EdlInterface`."""
    return _Parser(_tokenize(text)).parse()
