"""The enclave SDK (Sec 3.4 / 5.3).

API-compatible in spirit with the Intel SGX SDK: applications define their
trusted/untrusted interface in an EDL file, the :mod:`repro.sdk.edger8r`
generates the proxies and bridges, the uRTS loads enclaves through
``/dev/hyper_enclave`` and owns the marshalling buffer, and the tRTS
dispatches ECALLs, provides ``sgx_ocalloc``-style OCALL marshalling, and
exposes sealing/attestation to enclave code.
"""

from repro.sdk.edl import parse_edl, EdlInterface, FuncSpec, ParamSpec, \
    Direction
from repro.sdk.image import EnclaveImage
from repro.sdk.urts import EnclaveHandle, UntrustedRuntime
from repro.sdk.trts import EnclaveContext

__all__ = [
    "parse_edl",
    "EdlInterface",
    "FuncSpec",
    "ParamSpec",
    "Direction",
    "EnclaveImage",
    "EnclaveHandle",
    "UntrustedRuntime",
    "EnclaveContext",
]
