"""Enclave images and their memory layout.

An image bundles the EDL interface, the trusted functions (the "enclave
library"), and the configuration.  ``compute_layout`` is the single source
of truth for the page layout, used both by the uRTS loader (to issue the
EADDs) and by ``EnclaveImage.sign`` (the offline ``sgx_sign`` equivalent
that pre-computes MRENCLAVE for the SIGSTRUCT).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable

from repro.crypto.hashes import sha256
from repro.crypto.rsa import RsaKeyPair
from repro.errors import SdkError
from repro.hw.phys import PAGE_SIZE
from repro.monitor.enclave import ENCLAVE_BASE_VA
from repro.monitor.measurement import MeasurementLog
from repro.monitor.structs import (EnclaveConfig, PagePerm, PageType,
                                   Sigstruct)
from repro.sdk.edl import EdlInterface, parse_edl

TrustedFunc = Callable[..., object]


def _function_fingerprint(func: TrustedFunc) -> bytes:
    """A stable digest of a trusted function (its source when available)."""
    try:
        body = inspect.getsource(func).encode()
    except (OSError, TypeError):
        body = func.__qualname__.encode()
    return sha256(func.__qualname__.encode(), body)


@dataclass
class EnclaveImage:
    """A compiled enclave: interface + trusted code + configuration."""

    name: str
    edl: EdlInterface
    trusted_funcs: dict[str, TrustedFunc]
    config: EnclaveConfig = field(default_factory=EnclaveConfig)
    exception_handler: TrustedFunc | None = None
    isv_prod_id: int = 0
    isv_svn: int = 0

    def __post_init__(self) -> None:
        for spec in self.edl.trusted:
            if spec.public and spec.name not in self.trusted_funcs:
                raise SdkError(
                    f"image {self.name!r}: public ECALL {spec.name!r} has "
                    f"no implementation")

    @classmethod
    def build(cls, name: str, edl_text: str,
              trusted_funcs: dict[str, TrustedFunc],
              config: EnclaveConfig | None = None, *,
              config_xml: str | None = None,
              **kwargs) -> "EnclaveImage":
        """Build an image from EDL text plus either an
        :class:`EnclaveConfig` or an SGX-style XML configuration file."""
        if config_xml is not None:
            if config is not None:
                raise SdkError("pass either config or config_xml, not both")
            from repro.sdk.config_xml import parse_config_xml
            parsed = parse_config_xml(config_xml)
            config = parsed.config
            kwargs.setdefault("isv_prod_id", parsed.prod_id)
            kwargs.setdefault("isv_svn", parsed.isv_svn)
        return cls(name=name, edl=parse_edl(edl_text),
                   trusted_funcs=trusted_funcs,
                   config=config or EnclaveConfig(), **kwargs)

    def code_bytes(self) -> bytes:
        """The enclave's "text section": a canonical serialization of the
        interface and every trusted function.  Any change to the code or
        interface changes these bytes, hence the measurement."""
        parts = [b"IMAGE", self.name.encode()]
        for spec in sorted(self.edl.trusted, key=lambda s: s.name):
            parts.append(spec.name.encode())
            parts.append(spec.return_type.encode())
            for p in spec.params:
                parts.append(f"{p.name}:{p.type}:{p.direction.value}:"
                             f"{p.size_expr}".encode())
        for fname in sorted(self.trusted_funcs):
            parts.append(fname.encode())
            parts.append(_function_fingerprint(self.trusted_funcs[fname]))
        if self.exception_handler is not None:
            parts.append(_function_fingerprint(self.exception_handler))
        return b"\x00".join(parts)

    def sign(self, key: RsaKeyPair, *, base: int = ENCLAVE_BASE_VA
             ) -> Sigstruct:
        """The ``sgx_sign`` step: replay the layout offline, measure it,
        and sign the resulting MRENCLAVE."""
        from repro.monitor.structs import ATTR_DEBUG
        layout = compute_layout(self, base=base)
        log = MeasurementLog()
        log.ecreate(base, layout.elrange_size, self.config.mode.value,
                    ATTR_DEBUG if self.config.debug else 0)
        for page in layout.pages:
            log.eadd(page.offset, page.page_type, page.perms, page.content)
        return Sigstruct.sign(log.finalize(), key,
                              isv_prod_id=self.isv_prod_id,
                              isv_svn=self.isv_svn)


@dataclass(frozen=True)
class LayoutPage:
    """One page the loader must EADD."""

    offset: int
    page_type: PageType
    perms: PagePerm
    content: bytes
    tcs_entry_va: int | None = None    # set on TCS pages


@dataclass(frozen=True)
class Layout:
    """The full enclave memory plan."""

    elrange_size: int
    pages: tuple[LayoutPage, ...]
    heap_start: int              # offset of the demand-committed heap
    heap_size: int
    entry_offset: int            # enclave entry point (start of code)


def compute_layout(image: EnclaveImage, *, base: int = ENCLAVE_BASE_VA
                   ) -> Layout:
    """Plan the enclave's pages.

    Layout (offsets within ELRANGE)::

        [ code | globals | stacks (per TCS) | TCS | SSA | heap (reserved) ]

    The heap is *not* EADDed: it demand-commits through RustMonitor's
    page-fault path (the EDMM behaviour Sec 3.2 highlights).
    """
    config = image.config
    pages: list[LayoutPage] = []
    code = image.code_bytes()
    offset = 0

    for start in range(0, max(len(code), 1), PAGE_SIZE):
        pages.append(LayoutPage(offset=offset, page_type=PageType.REG,
                                perms=PagePerm.RX,
                                content=code[start:start + PAGE_SIZE]))
        offset += PAGE_SIZE

    pages.append(LayoutPage(offset=offset, page_type=PageType.REG,
                            perms=PagePerm.RW, content=b""))   # globals
    offset += PAGE_SIZE

    for _ in range(config.tcs_count):
        for _ in range(config.stack_size // PAGE_SIZE):
            pages.append(LayoutPage(offset=offset, page_type=PageType.REG,
                                    perms=PagePerm.RW, content=b""))
            offset += PAGE_SIZE

    for _ in range(config.tcs_count):
        pages.append(LayoutPage(offset=offset, page_type=PageType.TCS,
                                perms=PagePerm.RW, content=b"",
                                tcs_entry_va=base))
        offset += PAGE_SIZE
        for _ in range(config.ssa_frames_per_tcs):
            pages.append(LayoutPage(offset=offset, page_type=PageType.SSA,
                                    perms=PagePerm.RW, content=b""))
            offset += PAGE_SIZE

    heap_start = offset
    offset += config.heap_size

    return Layout(elrange_size=offset, pages=tuple(pages),
                  heap_start=heap_start, heap_size=config.heap_size,
                  entry_offset=0)
