"""SGX-SDK-style enclave configuration files.

The SGX SDK configures enclaves through ``Enclave.config.xml``;
HyperEnclave extends it with the marshalling-buffer size ("The size of
the marshalling buffer can be configured in the enclave's configuration
file", Sec 5.3) and the operation mode.  Example::

    <EnclaveConfiguration>
      <ProdID>1</ProdID>
      <ISVSVN>3</ISVSVN>
      <HeapMaxSize>0x400000</HeapMaxSize>
      <StackMaxSize>0x40000</StackMaxSize>
      <TCSNum>4</TCSNum>
      <SSAFrameNum>2</SSAFrameNum>
      <MarshallingBufferSize>0x10000</MarshallingBufferSize>
      <EnclaveMode>GU</EnclaveMode>
      <DisableDebug>1</DisableDebug>
    </EnclaveConfiguration>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass

from repro.errors import SdkError
from repro.monitor.structs import EnclaveConfig, EnclaveMode

_INT_FIELDS = {
    "HeapMaxSize": "heap_size",
    "StackMaxSize": "stack_size",
    "TCSNum": "tcs_count",
    "SSAFrameNum": "ssa_frames_per_tcs",
    "MarshallingBufferSize": "marshalling_buffer_size",
}


@dataclass(frozen=True)
class ParsedEnclaveConfig:
    """An XML config resolved into SDK objects."""

    config: EnclaveConfig
    prod_id: int
    isv_svn: int


def _parse_int(text: str, tag: str) -> int:
    try:
        return int(text.strip(), 0)      # accepts 0x... like the SDK
    except ValueError as exc:
        raise SdkError(f"<{tag}>: not an integer: {text!r}") from exc


def parse_config_xml(text: str) -> ParsedEnclaveConfig:
    """Parse an enclave configuration file."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SdkError(f"malformed enclave config XML: {exc}") from exc
    if root.tag != "EnclaveConfiguration":
        raise SdkError(
            f"expected <EnclaveConfiguration>, got <{root.tag}>")

    kwargs: dict[str, object] = {}
    prod_id = 0
    isv_svn = 0
    for child in root:
        tag = child.tag
        text_value = child.text or ""
        if tag in _INT_FIELDS:
            kwargs[_INT_FIELDS[tag]] = _parse_int(text_value, tag)
        elif tag == "ProdID":
            prod_id = _parse_int(text_value, tag)
        elif tag == "ISVSVN":
            isv_svn = _parse_int(text_value, tag)
        elif tag == "EnclaveMode":
            name = text_value.strip().upper()
            try:
                kwargs["mode"] = EnclaveMode[name]
            except KeyError as exc:
                raise SdkError(f"<EnclaveMode>: unknown mode {name!r} "
                               f"(GU, HU, or P)") from exc
        elif tag == "DisableDebug":
            kwargs["debug"] = not _parse_int(text_value, tag)
        else:
            raise SdkError(f"unknown enclave config element <{tag}>")

    if kwargs.get("mode") is EnclaveMode.SGX:
        raise SdkError("<EnclaveMode>SGX</EnclaveMode> is reserved for "
                       "the baseline platform")
    return ParsedEnclaveConfig(config=EnclaveConfig(**kwargs),
                               prod_id=prod_id, isv_svn=isv_svn)
