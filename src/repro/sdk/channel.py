"""An attested secure channel between two enclaves on one platform.

The paper's deployment ("privacy-preserving computations" across
services) needs enclaves to talk to each other through untrusted memory.
This module implements the standard construction on top of the
reproduction's primitives:

1. both sides generate ephemeral DH keys,
2. each binds its public value into a *local-attestation report* targeted
   at the peer (EREPORT, MACed with the peer's report key),
3. each verifies the peer's report — this authenticates the public value
   *and* the peer's MRENCLAVE — then derives the session key from the DH
   secret and the handshake transcript,
4. messages flow as AEAD records with strictly increasing sequence
   numbers (replay protection); the ciphertext can ride any untrusted
   transport (the marshalling buffer, the OS, disk).

A man-in-the-middle OS can see and reorder the handshake but cannot forge
the reports, so key substitution is caught — the SIGMA idea the paper's
remote-attestation flow follows (Sec 3.3).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.crypto import dh
from repro.crypto.cipher import aead_decrypt, aead_encrypt
from repro.crypto.hashes import sha256
from repro.errors import AttestationError, SealError, SecurityViolation


@dataclass
class HandshakeMessage:
    """One side's handshake flight: DH public value + binding report."""

    dh_public: int
    report: object           # LocalReport binding sha256(dh_public)


class SecureChannel:
    """One endpoint of an enclave-to-enclave channel."""

    def __init__(self, ctx, peer_mrenclave: bytes) -> None:
        self.ctx = ctx
        self.peer_mrenclave = peer_mrenclave
        self._keys = dh.generate_keypair(ctx.random(32))
        self._session_key: bytes | None = None
        self._send_seq = 0
        self._recv_seq = 0

    # -- handshake -------------------------------------------------------------

    def initiate(self) -> HandshakeMessage:
        """Produce this side's handshake flight."""
        binding = sha256(b"dh-binding", dh.public_bytes(self._keys.public))
        report = self.ctx.create_report(self.peer_mrenclave, binding)
        return HandshakeMessage(dh_public=self._keys.public, report=report)

    def complete(self, peer: HandshakeMessage) -> None:
        """Verify the peer's flight and derive the session key."""
        if not self.ctx.verify_report(peer.report):
            raise AttestationError(
                "channel handshake: peer report does not verify")
        if peer.report.mrenclave != self.peer_mrenclave:
            raise AttestationError(
                "channel handshake: peer is not the expected enclave")
        expected = sha256(b"dh-binding", dh.public_bytes(peer.dh_public))
        if peer.report.report_data != expected:
            raise SecurityViolation(
                "channel handshake: DH public value substituted "
                "(report binding mismatch)")
        shared = self._keys.shared_secret(peer.dh_public)
        transcript = (dh.public_bytes(min(self._keys.public,
                                          peer.dh_public))
                      + dh.public_bytes(max(self._keys.public,
                                            peer.dh_public)))
        self._session_key = dh.session_key(shared, transcript)
        self.ctx.compute(12_000)      # two modexps + KDF

    @property
    def established(self) -> bool:
        return self._session_key is not None

    # -- records -----------------------------------------------------------------

    def send(self, plaintext: bytes) -> bytes:
        """Encrypt one record (can travel over any untrusted transport)."""
        if self._session_key is None:
            raise SecurityViolation("channel not established")
        seq = struct.pack("<Q", self._send_seq)
        self._send_seq += 1
        nonce = sha256(b"record-nonce", self._session_key, seq)[:16]
        self.ctx.compute(len(plaintext) * 2 + 800)
        return seq + aead_encrypt(self._session_key, nonce, plaintext,
                                  aad=b"record" + seq)

    def recv(self, record: bytes) -> bytes:
        """Decrypt the next record; rejects tampering, replay, reorder."""
        if self._session_key is None:
            raise SecurityViolation("channel not established")
        if len(record) < 8:
            raise SealError("channel record too short")
        seq_bytes, body = record[:8], record[8:]
        (seq,) = struct.unpack("<Q", seq_bytes)
        if seq != self._recv_seq:
            raise SecurityViolation(
                f"channel replay/reorder: expected record {self._recv_seq},"
                f" got {seq}")
        plaintext = aead_decrypt(self._session_key, body,
                                 aad=b"record" + seq_bytes)
        self._recv_seq += 1
        self.ctx.compute(len(plaintext) * 2 + 800)
        return plaintext


def establish_pair(ctx_a, ctx_b) -> tuple[SecureChannel, SecureChannel]:
    """Run the full handshake between two enclave contexts."""
    a = SecureChannel(ctx_a, ctx_b.enclave.secs.mrenclave)
    b = SecureChannel(ctx_b, ctx_a.enclave.secs.mrenclave)
    flight_a = a.initiate()
    flight_b = b.initiate()
    a.complete(flight_b)
    b.complete(flight_a)
    return a, b
