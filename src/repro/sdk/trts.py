"""The trusted runtime (tRTS): what enclave code runs against.

``EnclaveContext`` is the first argument of every trusted function.  It
provides enclave-private memory (real bytes through the enclave's own
page table, demand-committed by RustMonitor on first touch), cost-only
``touch``/``compute`` accounting for workload kernels, OCALLs through the
marshalling buffer, sealing, local reports and remote quotes, and the
mode-dependent exception machinery of Table 2.
"""

from __future__ import annotations

import functools
from typing import Callable

from repro.crypto.cipher import aead_decrypt, aead_encrypt
from repro.errors import (EnclaveError, PageFault, SdkError,
                          SecurityViolation)
from repro.hw import costs, memaccess
from repro.hw.phys import PAGE_SIZE
from repro.monitor.enclave import Enclave
from repro.monitor.sealing import SealPolicy
from repro.monitor.structs import EnclaveMode, PagePerm, Tcs

# Vector numbers re-exported for enclave code.
from repro.hw.interrupts import VEC_PF, VEC_UD

PfHandler = Callable[["EnclaveContext", int], None]
ExcHandler = Callable[["EnclaveContext", int], None]


class EnclaveContext:
    """The enclave-side execution context for one loaded enclave."""

    def __init__(self, handle) -> None:
        # ``handle`` is the uRTS EnclaveHandle; the context only touches
        # the pieces an enclave legitimately reaches.
        self._handle = handle
        self.enclave: Enclave = handle.enclave
        self._monitor = handle.monitor
        self._world = handle.world
        self.mem = handle.enclave_mem
        self._machine = handle.machine
        layout = handle.layout
        self._heap_base = self.enclave.secs.base + layout.heap_start
        self._heap_end = self._heap_base + layout.heap_size
        self._heap_cursor = self._heap_base
        self.globals: dict[str, object] = {}
        self.pf_handler: PfHandler | None = None
        self.exc_handler: ExcHandler | None = None
        self._in_handler = False
        self.current_tcs: Tcs | None = None

    # ------------------------------------------------------------- memory --

    @property
    def mode(self) -> EnclaveMode:
        return self.enclave.mode

    def malloc(self, size: int) -> int:
        """Bump-allocate enclave heap (demand-committed on first touch)."""
        if size <= 0:
            raise SdkError("malloc of non-positive size")
        size = (size + 15) & ~15
        va = self._heap_cursor
        if va + size > self._heap_end:
            raise SdkError("enclave heap exhausted")
        self._heap_cursor += size
        return va

    def heap_reset(self) -> None:
        """Arena-style free of everything malloc'd (tests/benchmarks)."""
        self._heap_cursor = self._heap_base

    def _abstract(self, va: int) -> int:
        # Keep per-enclave address spaces apart in the shared LLC model.
        return va + (self.enclave.enclave_id << 50)

    def read(self, va: int, size: int) -> bytes:
        """Read enclave-virtual memory (real bytes + cost accounting)."""
        self.mem.touch(self._abstract(va), size)
        return self._access(va, size, write=False)

    def write(self, va: int, data: bytes) -> None:
        """Write enclave-virtual memory (real bytes + cost accounting)."""
        self.mem.touch(self._abstract(va), len(data), write=True)
        self._access(va, len(data), write=True, data=data)

    def read_stream(self, va: int, size: int) -> bytes:
        """Bulk read at streaming rate: used by the marshalling paths.

        The SDK's copies are rep-movsb streams whose latency the
        prefetchers hide; the caller charges the memcpy-rate cost, so no
        per-line touches here.
        """
        return self._access(va, size, write=False)

    def write_stream(self, va: int, data: bytes) -> None:
        """Bulk write at streaming rate (see :meth:`read_stream`)."""
        self._access(va, len(data), write=True, data=data)

    def _access(self, va: int, size: int, *, write: bool,
                data: bytes | None = None) -> bytes:
        translate = functools.partial(
            self._translate_with_demand_paging, write=write)
        if write:
            memaccess.copy_out(self._machine.phys, translate, va, data)
            return b""
        return memaccess.copy_in(self._machine.phys, translate, va, size)

    def _translate_with_demand_paging(self, va: int, *, write: bool) -> int:
        try:
            return self.enclave.translate(va, write=write)
        except PageFault as fault:
            if not fault.present:
                # Not-present fault: RustMonitor demand-commits (Sec 3.2).
                self._monitor.handle_enclave_page_fault(
                    self.enclave.enclave_id, va, write=write)
                return self.enclave.translate(va, write=write)
            # Protection fault: the enclave's own handler may fix it up
            # (the GC scenario of Table 2).
            self._dispatch_protection_fault(va)
            return self.enclave.translate(va, write=write)

    # cost-only accounting for workload kernels -------------------------------

    def touch(self, addr: int, size: int = 8, *, write: bool = False) -> None:
        """Charge the memory-system cost of an access without moving bytes."""
        self.mem.touch(self._abstract(addr), size, write=write)

    def touch_sequential(self, addr: int, size: int, *,
                         write: bool = False) -> None:
        self.mem.touch_sequential(self._abstract(addr), size, write=write)

    def compute(self, ops: float) -> None:
        """Charge pure-compute cycles."""
        self.mem.compute(ops)

    # ------------------------------------------------------------ edge calls --

    def ocall(self, name: str, **kwargs):
        """Call out to the untrusted application (through the uRTS)."""
        return self._handle.dispatch_ocall(self, name, kwargs)

    # ------------------------------------------------------- user_check help --

    def copy_from_user(self, app_va: int, size: int) -> bytes:
        """Read a user_check pointer.

        On HyperEnclave the enclave can only reach the marshalling buffer;
        on the SGX baseline the whole application address space is fair
        game (which is what enclave malware exploits, Sec 6).
        """
        if self.enclave.accessible(app_va, size):
            self.mem.touch(self._abstract(app_va), size)
            return self._access(app_va, size, write=False)
        if self.mode is EnclaveMode.SGX:
            return self._handle.app_read(app_va, size)
        raise SecurityViolation(
            f"enclave access to application memory at {app_va:#x} outside "
            f"the marshalling buffer")

    def copy_to_user(self, app_va: int, data: bytes) -> None:
        """Write through a user_check pointer (same policy as reads)."""
        if self.enclave.accessible(app_va, len(data), write=True):
            self.mem.touch(self._abstract(app_va), len(data), write=True)
            self._access(app_va, len(data), write=True, data=data)
            return
        if self.mode is EnclaveMode.SGX:
            self._handle.app_write(app_va, data)
            return
        raise SecurityViolation(
            f"enclave write to application memory at {app_va:#x} outside "
            f"the marshalling buffer")

    # ------------------------------------------------------------- security --

    def get_seal_key(self, policy: SealPolicy = SealPolicy.MRENCLAVE) -> bytes:
        return self._monitor.egetkey(self.enclave.enclave_id, policy=policy)

    def seal_data(self, data: bytes, *, aad: bytes = b"",
                  policy: SealPolicy = SealPolicy.MRENCLAVE) -> bytes:
        """sgx_seal_data: AEAD under the enclave's sealing key."""
        key = self.get_seal_key(policy)
        nonce = self.random(16)
        self.compute(len(data) * 2 + 2000)       # AES-GCM-ish cost
        policy_tag = policy.value.encode()
        return policy_tag + b":" + aead_encrypt(key, nonce, data,
                                                aad=policy_tag + aad)

    def unseal_data(self, blob: bytes, *, aad: bytes = b"") -> bytes:
        """sgx_unseal_data; raises SealError on wrong enclave/tamper."""
        policy_tag, _, body = blob.partition(b":")
        policy = SealPolicy(policy_tag.decode())
        key = self.get_seal_key(policy)
        self.compute(len(body) * 2 + 2000)
        return aead_decrypt(key, body, aad=policy_tag + aad)

    def seal_versioned(self, data: bytes, *, aad: bytes = b"",
                       policy: SealPolicy = SealPolicy.MRENCLAVE) -> bytes:
        """Seal with rollback protection (TPM NV monotonic counter).

        Every versioned seal bumps the enclave's monotonic counter and
        binds the new value into the blob; :meth:`unseal_versioned` only
        accepts the blob matching the *current* counter, so the untrusted
        OS cannot replay stale sealed state (e.g. an old wallet balance).
        """
        version = self._monitor.monotonic_counter_increment(
            self.enclave.enclave_id)
        header = version.to_bytes(8, "little")
        blob = self.seal_data(data, aad=aad + b"|version:" + header,
                              policy=policy)
        return header + blob

    def unseal_versioned(self, blob: bytes, *, aad: bytes = b"") -> bytes:
        """Unseal rollback-protected state; raises on stale versions."""
        from repro.errors import SealError
        if len(blob) < 8:
            raise SealError("versioned blob too short")
        header, body = blob[:8], blob[8:]
        version = int.from_bytes(header, "little")
        current = self._monitor.monotonic_counter_read(
            self.enclave.enclave_id)
        if version != current:
            raise SealError(
                f"rollback detected: sealed state is version {version}, "
                f"the monotonic counter says {current}")
        return self.unseal_data(body, aad=aad + b"|version:" + header)

    def create_report(self, target_mrenclave: bytes, report_data: bytes):
        """EREPORT for local attestation."""
        return self._monitor.ereport(self.enclave.enclave_id, report_data,
                                     target_mrenclave)

    def verify_report(self, report) -> bool:
        return self._monitor.verify_local_report(self.enclave.enclave_id,
                                                 report)

    def get_quote(self, report_data: bytes, nonce: bytes):
        """The remote-attestation quote (Figure 4)."""
        return self._monitor.quote(self.enclave.enclave_id, report_data,
                                   nonce)

    def random(self, n: int) -> bytes:
        return self._machine.tpm.random(n)

    # ------------------------------------------------------------ exceptions --

    def register_exception_handler(self, handler: ExcHandler,
                                   vectors: set[int] | None = None) -> None:
        """Install an in-enclave exception handler.

        For P-Enclaves the listed vectors are white-listed for direct
        in-enclave IDT dispatch (Sec 4.3); for GU/HU/SGX the handler runs
        in phase two of the two-phase flow.
        """
        self.exc_handler = handler
        if self.mode is EnclaveMode.P:
            self.enclave.whitelisted_vectors = vectors or {VEC_UD, VEC_PF}

    def register_pf_handler(self, handler: PfHandler) -> None:
        self.pf_handler = handler

    def trigger_ud(self) -> None:
        """Execute an undefined instruction (the Table 2 #UD benchmark)."""
        if self.exc_handler is None:
            raise EnclaveError("#UD with no handler: enclave aborts")
        if self.mode is EnclaveMode.P and \
                VEC_UD in self.enclave.whitelisted_vectors:
            # Delivered through the enclave's own IDT: no world switch.
            self._machine.cpu.charge_steps(costs.P_ENCLAVE_EXCEPTION_STEPS,
                                           "exception:p")
            self._run_handler(self.exc_handler, VEC_UD)
            return
        self._two_phase_exception(VEC_UD)

    def _two_phase_exception(self, vector: int) -> None:
        """AEX -> OS signal -> internal ECALL to the handler -> ERESUME."""
        enclave = self.enclave
        tcs = self.current_tcs
        if tcs is None:
            raise EnclaveError("exception outside an ECALL")
        tel = self._machine.telemetry
        tel.count("sdk", "exceptions.two_phase", vector=vector,
                  mode=enclave.mode.value)
        with tel.span("trts.exception", enclave=enclave.enclave_id,
                      vector=vector), tel.cause(f"exception:{vector}"):
            self._world.aex(enclave, tcs, vector)
            self._handle.kernel.deliver_signal(
                self._handle.process, _signal_for(vector),
                vector=vector)
            # Phase 2: the uRTS re-enters the enclave to run the handler
            # (a full internal ECALL, which is why GU/SGX are so slow
            # here).
            mode = enclave.mode.value
            self._world.eenter(enclave, tcs, self._handle.AEP)
            self._world.charge_ecall_warmup(enclave)
            for _, cyc in costs.ECALL_SDK_STEPS:
                self._machine.cycles.charge(cyc, "sdk-ecall")
            self._machine.cycles.charge(costs.EXCEPTION_HANDLER_WORK,
                                        f"exception:{mode}")
            self._run_handler(self.exc_handler, vector)
            self._world.eexit(enclave, self._handle.AEP)
            self._world.eresume(enclave, tcs)

    def _dispatch_protection_fault(self, va: int) -> None:
        """The GC scenario (Table 2 #PF): restore permissions in-handler."""
        if self.pf_handler is None:
            raise PageFault(va, write=True, present=True)
        mode = self.mode
        if mode is EnclaveMode.P:
            self._machine.cpu.charge_steps(costs.P_PF_STEPS, "pf:p")
        elif mode is EnclaveMode.GU:
            self._machine.cpu.charge_steps(costs.GU_PF_STEPS, "pf:gu")
        else:
            # HU / SGX: the OS two-phase path (not a paper data point);
            # approximate with the GU monitor path plus the signal hop.
            self._machine.cpu.charge_steps(costs.GU_PF_STEPS, "pf:other")
            self._machine.cycles.charge(costs.OS_SIGNAL_DISPATCH, "signal")
        self._run_handler(self.pf_handler, va)

    def _run_handler(self, handler, arg) -> None:
        self._in_handler = True
        try:
            handler(self, arg)
        finally:
            self._in_handler = False

    # ------------------------------------------------- interrupt monitoring --

    def enable_interrupt_monitor(self, *, window_cycles: float = 1_000_000,
                                 max_per_window: int = 32) -> None:
        """Arm the P-Enclave interrupt-anomaly detector (Sec 4.3).

        "P-Enclaves may also detect abnormal interrupt events by counting
        the frequency, before requesting RustMonitor to route them to the
        primary OS.  As such, existing interrupt-based side channel
        attacks could be detected and mitigated."

        Only meaningful for P-Enclaves (other modes never see their own
        interrupts).  When more than ``max_per_window`` interrupts land
        within ``window_cycles``, the enclave flags the anomaly and asks
        RustMonitor to stop passing interrupts through (evicting the
        vectors from the white-list), which starves single-stepping
        attacks like SGX-Step.
        """
        if self.mode is not EnclaveMode.P:
            raise SdkError("interrupt monitoring needs a P-Enclave")
        self._int_window = window_cycles
        self._int_max = max_per_window
        self._int_arrivals: list[int] = []
        self.interrupt_anomaly = False

    def deliver_interrupt(self, vector: int) -> bool:
        """One interrupt delivered to the P-Enclave's own IDT.

        Returns True while delivery stays in-enclave; False once the
        anomaly detector has rerouted interrupts to the primary OS.
        """
        if getattr(self, "_int_window", None) is None:
            raise SdkError("interrupt monitor not enabled")
        if self.interrupt_anomaly:
            # Already rerouted: the interrupt goes to the primary OS
            # (full AEX round trip), not to the enclave.
            self._machine.cpu.charge_steps(costs.AEX_STEPS["p"], "aex:p")
            self._machine.cpu.charge_steps(costs.ERESUME_STEPS["p"],
                                           "eresume:p")
            return False
        self._machine.cpu.charge_steps(costs.P_ENCLAVE_EXCEPTION_STEPS,
                                       "exception:p")
        now = self._machine.cycles.read()
        self._int_arrivals.append(now)
        cutoff = now - self._int_window
        self._int_arrivals = [t for t in self._int_arrivals if t >= cutoff]
        if len(self._int_arrivals) > self._int_max:
            # Abnormal frequency: request RustMonitor to reroute.
            self.interrupt_anomaly = True
            self.enclave.whitelisted_vectors.clear()
            return False
        return True

    # ------------------------------------------------ page permissions (GC) --

    def mprotect(self, va: int, npages: int, perms: PagePerm) -> None:
        """Change enclave page permissions.

        P-Enclaves edit their own level-1 page table; GU/HU/SGX enclaves
        must hypercall RustMonitor (Sec 4.3).  Inside a fault handler the
        cost is already covered by the itemized step list.
        """
        if self._in_handler:
            for i in range(npages):
                self.enclave.protect_page(va + i * PAGE_SIZE, perms)
                if self.mode is EnclaveMode.P:
                    # P edits its own table; only its own vCPU caches it.
                    self._machine.tlb.invlpg(self.enclave.enclave_id,
                                             va + i * PAGE_SIZE)
                else:
                    # The monitor invalidates conservatively: it cannot
                    # know which cores cached the translation (IPIs on
                    # SMP; free on one CPU, so Table 2 stays calibrated).
                    self._monitor._tlb_shootdown(self.enclave.enclave_id,
                                                 va + i * PAGE_SIZE)
            return
        if self.mode is EnclaveMode.P:
            for i in range(npages):
                self.enclave.protect_page(va + i * PAGE_SIZE, perms)
                self._machine.cycles.charge(474, "own-pt-update")
                self._machine.tlb.invlpg(self.enclave.enclave_id,
                                         va + i * PAGE_SIZE)
                self._machine.cycles.charge(200, "invlpg")
            return
        self._monitor.enclave_mprotect(self.enclave.enclave_id, va, npages,
                                       perms)


def _signal_for(vector: int) -> int:
    from repro.osim.kernel import SIGILL, SIGSEGV
    return SIGILL if vector == VEC_UD else SIGSEGV
