"""Top-level platform facade.

One :class:`TeePlatform` is one evaluation box, fully booted:

* ``TeePlatform.hyperenclave()`` — the paper's AMD server: SME memory
  encryption, measured late launch, RustMonitor, kernel module.  Enclaves
  load in any of the three operation modes.
* ``TeePlatform.intel_sgx()``    — the Intel comparison box: MEE memory
  encryption, 93 MB EPC with paging, SGX-calibrated switch costs.
  Enclaves load with ``EnclaveMode.SGX`` and no marshalling buffer.
* ``TeePlatform.native()``       — the no-protection baseline: same
  machine, no encryption, no enclaves; workloads run in a
  :class:`NativeContext` with plain memory costs.

Benchmarks build one of each and run identical workload code on all.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.crypto.rsa import RsaKeyPair, cached_keypair
from repro.errors import SdkError
from repro.hw import costs
from repro.hw.machine import Machine, MachineConfig
from repro.hw.memmodel import MemorySubsystem
from repro.monitor.boot import BootResult, measured_late_launch
from repro.monitor.structs import EnclaveConfig, EnclaveMode
from repro.osim.kernel import Kernel
from repro.osim.kmod import HyperEnclaveDevice
from repro.osim.net import Loopback
from repro.osim.vfs import Vfs
from repro.sdk.edger8r import generate_proxies
from repro.sdk.image import EnclaveImage
from repro.sdk.urts import EnclaveHandle, UntrustedRuntime

DEFAULT_VENDOR_KEY: RsaKeyPair = cached_keypair(b"repro-default-vendor-key")

# A scaled-down default machine: lazily-allocated frames make the address
# space cheap, but small pools keep pool setup fast.
_DEFAULT_CONFIG = MachineConfig(
    phys_size=8 * 1024 * 1024 * 1024,
    reserved_base=1 * 1024 * 1024 * 1024,
    reserved_size=2 * 1024 * 1024 * 1024,
)


class NativeContext:
    """The no-protection execution context (baseline runs).

    Mirrors the :class:`~repro.sdk.trts.EnclaveContext` surface the
    workloads use (malloc/touch/compute/random), with plain memory costs
    and no world switches.
    """

    def __init__(self, machine: Machine) -> None:
        self._machine = machine
        from repro.hw.memenc import NoEncryption
        self.mem = MemorySubsystem(machine.cycles, NoEncryption(),
                                   llc=machine.llc, tlb=machine.tlb,
                                   category="native-memory")
        self._heap_cursor = 0x5000_0000_0000
        self._heap_base = self._heap_cursor

    mode = None

    def malloc(self, size: int) -> int:
        if size <= 0:
            raise SdkError("malloc of non-positive size")
        size = (size + 15) & ~15
        va = self._heap_cursor
        self._heap_cursor += size
        return va

    def heap_reset(self) -> None:
        self._heap_cursor = self._heap_base

    def touch(self, addr: int, size: int = 8, *, write: bool = False) -> None:
        self.mem.touch(addr, size, write=write)

    def touch_sequential(self, addr: int, size: int, *,
                         write: bool = False) -> None:
        self.mem.touch_sequential(addr, size, write=write)

    def compute(self, ops: float) -> None:
        self.mem.compute(ops)

    def random(self, n: int) -> bytes:
        return self._machine.tpm.random(n)


@dataclass
class TeePlatform:
    """One booted evaluation platform."""

    kind: str
    machine: Machine
    kernel: Kernel
    loopback: Loopback
    os_vfs: Vfs
    boot: BootResult | None = None
    device: HyperEnclaveDevice | None = None
    process: object = None
    urts: UntrustedRuntime | None = None

    # -- constructors -------------------------------------------------------

    @classmethod
    def hyperenclave(cls, config: MachineConfig | None = None,
                     **overrides) -> "TeePlatform":
        machine_config = replace(config or _DEFAULT_CONFIG,
                                 encryption="amd-sme", **overrides)
        return cls._boot("hyperenclave", machine_config)

    @classmethod
    def intel_sgx(cls, config: MachineConfig | None = None,
                  **overrides) -> "TeePlatform":
        machine_config = replace(config or _DEFAULT_CONFIG,
                                 encryption="intel-mee", **overrides)
        return cls._boot("sgx", machine_config)

    @classmethod
    def native(cls, config: MachineConfig | None = None,
               **overrides) -> "TeePlatform":
        machine_config = replace(config or _DEFAULT_CONFIG,
                                 encryption="none", **overrides)
        machine = Machine(machine_config)
        kernel = Kernel(machine, None)
        platform = cls(kind="native", machine=machine, kernel=kernel,
                       loopback=Loopback(machine),
                       os_vfs=Vfs(machine.cycles.charge))
        platform.process = kernel.spawn()
        return platform

    @classmethod
    def _boot(cls, kind: str, machine_config: MachineConfig) -> "TeePlatform":
        machine = Machine(machine_config)
        boot = measured_late_launch(machine)
        kernel = Kernel(machine, boot.monitor)
        device = HyperEnclaveDevice(kernel, boot.monitor)
        platform = cls(kind=kind, machine=machine, kernel=kernel,
                       loopback=Loopback(machine),
                       os_vfs=Vfs(machine.cycles.charge),
                       boot=boot, device=device)
        boot.monitor.allow_dma_device("nic")
        boot.monitor.allow_dma_device("disk")
        platform.process = kernel.spawn()
        platform.urts = UntrustedRuntime(machine, kernel, device,
                                         boot.monitor, platform.process)
        return platform

    # -- convenience -------------------------------------------------------------

    @property
    def monitor(self):
        return self.boot.monitor if self.boot else None

    @property
    def cycles(self):
        return self.machine.cycles

    def native_context(self) -> NativeContext:
        if self.kind != "native":
            raise SdkError("native_context() is for native platforms")
        return NativeContext(self.machine)

    def load_enclave(self, image: EnclaveImage,
                     signing_key: RsaKeyPair | None = None,
                     *, use_marshalling: bool | None = None) -> EnclaveHandle:
        """Load an enclave, adapting the image to this platform."""
        if self.urts is None:
            raise SdkError(f"platform {self.kind!r} cannot load enclaves")
        if self.kind == "sgx":
            if image.config.mode is not EnclaveMode.SGX:
                image = replace_image_mode(image, EnclaveMode.SGX)
            if use_marshalling is None:
                use_marshalling = False     # SGX has no marshalling buffer
        else:
            if image.config.mode is EnclaveMode.SGX:
                raise SdkError("SGX-mode image on a HyperEnclave platform")
            if use_marshalling is None:
                use_marshalling = True
        handle = self.urts.create_enclave(
            image, signing_key or DEFAULT_VENDOR_KEY,
            use_marshalling=use_marshalling)
        handle.proxies = generate_proxies(handle)
        return handle


def replace_image_mode(image: EnclaveImage, mode: EnclaveMode
                       ) -> EnclaveImage:
    """A copy of ``image`` configured for a different operation mode."""
    import dataclasses
    new_config = dataclasses.replace(image.config, mode=mode)
    return dataclasses.replace(image, config=new_config)
