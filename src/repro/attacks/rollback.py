"""Boot-time and state-rollback attacks on the trust chain (Sec 3.3, 6)."""

from __future__ import annotations

from repro.attacks.results import AttackResult, run_attack
from repro.crypto.hashes import sha256


def forge_pcr_state(platform) -> AttackResult:
    """After a tampered boot, try to extend PCRs back to the golden
    values.  Extends only ever hash forward, so this cannot work — the
    attack 'succeeds' only if it reproduces a golden PCR value."""

    def attack() -> str:
        tpm = platform.machine.tpm
        golden = platform.boot.golden.pcr_values
        tpm.extend(8, sha256(b"rootkit"))     # the tamper
        for _ in range(64):
            tpm.extend(8, sha256(b"search for golden value"))
            if tpm.read_pcr(8) == golden[8]:
                return "rolled PCR 8 back to the golden value"
        raise_unreachable()

    def raise_unreachable():
        from repro.errors import SecurityViolation
        raise SecurityViolation(
            "PCR extends only hash forward: golden value unreachable")

    return run_attack("rollback: forge PCR state by extending", attack)


def steal_sealed_root_key(platform) -> AttackResult:
    """The demoted OS grabs the sealed K_root blob from disk and asks the
    TPM to unseal it.  The monitor flooded the boot PCRs before handing
    control over, so the policy can never match again this boot."""

    def attack() -> str:
        k_root = platform.machine.tpm.unseal(platform.boot.sealed_root_key)
        return f"unsealed K_root: {k_root[:8].hex()}..."

    return run_attack("rollback: demoted OS unseals K_root", attack)


def quote_replay(platform, handle, verifier) -> AttackResult:
    """Replay an old quote against a verifier that demanded a fresh nonce."""

    def attack() -> str:
        stale = platform.monitor.quote(handle.enclave_id, b"", b"old-nonce")
        verifier.verify(stale, expected_nonce=b"fresh-nonce-123")
        return "verifier accepted a replayed quote"

    return run_attack("rollback: quote replay", attack)
