"""Interrupt-based side-channel attacks (SGX-Step style).

Single-stepping attacks program a timer to interrupt the enclave every
few hundred cycles, counting instructions between events to leak
control-flow secrets [24, 37, 40, 58, 59, 70].  P-Enclaves receive their
own interrupts and can therefore *count* them: "P-Enclaves may also
detect abnormal interrupt events by counting the frequency, before
requesting RustMonitor to route them to the primary OS" (Sec 4.3).

The attack "wins" if it collects enough in-enclave delivery samples for
instruction-level resolution before the victim notices.
"""

from __future__ import annotations

from repro.attacks.results import AttackResult, run_attack
from repro.errors import SecurityViolation
from repro.hw.interrupts import VEC_TIMER
from repro.monitor.structs import EnclaveMode

# An SGX-Step-quality trace needs many consecutive single-step samples.
SAMPLES_FOR_LEAK = 40
STEP_PERIOD_CYCLES = 500


def single_stepping_attack(platform, handle, *,
                           monitor_enabled: bool = True) -> AttackResult:
    """Drive timer interrupts at single-step frequency into the enclave.

    With the P-Enclave interrupt monitor armed, the anomaly detector
    trips long before the attacker has a usable trace and reroutes
    interrupts to the primary OS (delivery leaves the enclave's
    observable path).
    """

    def attack() -> str:
        ctx = handle.ctx
        if handle.enclave.mode is EnclaveMode.P and monitor_enabled:
            ctx.enable_interrupt_monitor(window_cycles=1_000_000,
                                         max_per_window=32)
            samples = 0
            for _ in range(SAMPLES_FOR_LEAK):
                platform.machine.cycles.charge(STEP_PERIOD_CYCLES,
                                               "victim-compute")
                if ctx.deliver_interrupt(VEC_TIMER):
                    samples += 1
                elif ctx.interrupt_anomaly:
                    raise SecurityViolation(
                        f"single-stepping detected after {samples} "
                        f"samples; interrupts rerouted to the primary OS")
            return (f"collected {samples} single-step samples "
                    f"(instruction-granular trace)")
        # GU/HU/SGX (or an unarmed P-Enclave): every interrupt silently
        # AEXes the enclave; nothing in the enclave can notice.
        for _ in range(SAMPLES_FOR_LEAK):
            platform.machine.cycles.charge(STEP_PERIOD_CYCLES,
                                           "victim-compute")
        return (f"collected {SAMPLES_FOR_LEAK} single-step samples "
                f"(victim mode {handle.enclave.mode.value} cannot observe "
                f"its own interrupts)")

    return run_attack("side-channel: SGX-Step single-stepping", attack)
