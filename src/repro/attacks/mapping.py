"""Memory-mapping attacks (Figure 9, Appendix A.1).

(a) alias two enclave virtual pages onto the same physical frame, so a
    write through one corrupts data the enclave believes is isolated;
(b) map a non-enclave virtual page onto an enclave frame, so untrusted
    code reads enclave memory directly.

On SGX-like designs the *untrusted OS* maintains the enclave page table
and can attempt both (SGX needs the EPCM + PMH hardware to catch them).
On HyperEnclave the OS simply has no handle on the enclave's page table —
the attacks below therefore go through the only interfaces it has: its
own page tables (policed by the NPT) and crafted hypercall arguments.
"""

from __future__ import annotations

from repro.attacks.results import AttackResult, run_attack
from repro.errors import SecurityViolation
from repro.hw.paging import PageTableFlags
from repro.hw.phys import PAGE_SIZE


def alias_enclave_pages(platform, handle) -> AttackResult:
    """Figure 9(a): the OS tries to alias two enclave pages.

    The only authority over enclave mappings is RustMonitor; the OS's
    best attempt is a crafted marshalling-buffer registration that names
    an enclave frame (so the enclave would get a second, writable mapping
    of its own page)."""

    def attack() -> str:
        enclave = handle.enclave
        victim_pa = enclave.pages[0].pa
        # Register a "marshalling buffer" whose frame list names the
        # enclave's own code frame.
        enclave.register_marshalling_buffer(
            0x7E00_0000_0000, PAGE_SIZE, [victim_pa])
        return "aliased an enclave frame into a second writable mapping"

    return run_attack("mapping: alias enclave page via crafted msbuf",
                      attack)


def map_enclave_frame_into_process(platform, handle) -> AttackResult:
    """Figure 9(b): the (malicious) OS maps an app page onto an enclave
    frame and reads through it."""

    def attack() -> str:
        kernel = platform.kernel
        process = platform.process
        victim_pa = handle.enclave.pages[0].pa
        vma = kernel.mmap(process, PAGE_SIZE, populate=True)
        process.pt.unmap(vma.start)
        process.pt.map(vma.start, victim_pa, PageTableFlags.URW)
        leaked = kernel.user_read(process, vma.start, 16)
        return f"read enclave memory: {leaked!r}"

    return run_attack("mapping: map enclave frame into app page table",
                      attack)


def os_remaps_marshalling_buffer(platform, handle) -> AttackResult:
    """The OS tries to swap the pinned marshalling-buffer frame for one it
    controls after EINIT (a TOCTOU on parameter passing).

    The frames are pinned — munmap/compaction refuses — so the OS cannot
    change the GPA->HPA binding the enclave got at registration."""

    def attack() -> str:
        kernel = platform.kernel
        process = platform.process
        kernel.munmap(process, handle.msbuf_vma)
        return "replaced the pinned marshalling buffer mapping"

    return run_attack("mapping: remap pinned marshalling buffer", attack)


def overlapping_marshalling_buffer(platform, image) -> AttackResult:
    """EINIT-time check: a marshalling buffer crafted to overlap ELRANGE
    (would let the app overwrite enclave memory, Sec 6)."""

    def attack() -> str:
        from repro.monitor.enclave import ENCLAVE_BASE_VA
        from repro.platform import DEFAULT_VENDOR_KEY
        from repro.sdk.image import compute_layout
        monitor = platform.monitor
        layout = compute_layout(image)
        sigstruct = image.sign(DEFAULT_VENDOR_KEY)
        eid = monitor.ecreate(image.config, size=layout.elrange_size)
        for page in layout.pages:
            if page.page_type.value == "tcs":
                monitor.add_tcs(eid, page.offset, ENCLAVE_BASE_VA)
            else:
                monitor.eadd(eid, page.offset, page.content,
                             page_type=page.page_type, perms=page.perms)
        vma = platform.kernel.mmap(platform.process, PAGE_SIZE,
                                   populate=True)
        crafted = (ENCLAVE_BASE_VA + PAGE_SIZE, PAGE_SIZE,
                   list(vma.frames))
        monitor.einit(eid, sigstruct, marshalling=crafted)
        return "registered a marshalling buffer inside ELRANGE"

    return run_attack("mapping: marshalling buffer overlapping ELRANGE",
                      attack)
