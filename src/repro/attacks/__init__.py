"""Attack scenarios from the paper's threat model and security analysis.

Each attack is a callable that *attempts* the violation through the same
interfaces a real attacker would use and reports whether the platform
blocked it.  The security test-suite asserts every one of these is
blocked on HyperEnclave; the SGX-model comparisons show which ones the
baseline design leaves open (enclave malware, Sec 6).
"""

from repro.attacks.results import AttackResult, run_attack
from repro.attacks import mapping, malware, dma, rollback, \
    sidechannel

__all__ = ["AttackResult", "run_attack", "mapping", "malware", "dma",
           "rollback", "sidechannel"]
