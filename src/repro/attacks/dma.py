"""DMA attacks by malicious peripherals (security requirement R-3)."""

from __future__ import annotations

from repro.attacks.results import AttackResult, run_attack


def dma_read_enclave_memory(platform, handle) -> AttackResult:
    """A rogue NIC DMA-reads an enclave frame."""

    def attack() -> str:
        victim_pa = handle.enclave.pages[0].pa
        loot = platform.machine.iommu.dma_read("nic", victim_pa, 32)
        return f"DMA read enclave memory: {loot[:8]!r}..."

    return run_attack("dma: peripheral reads enclave frame", attack)


def dma_write_monitor_memory(platform) -> AttackResult:
    """A rogue device DMA-writes into RustMonitor's reserved region."""

    def attack() -> str:
        target = platform.machine.config.reserved_base
        platform.machine.iommu.dma_write("disk", target, b"\x90" * 64)
        return "DMA overwrote RustMonitor memory"

    return run_attack("dma: peripheral writes monitor memory", attack)


def dma_from_unregistered_device(platform) -> AttackResult:
    """A hot-plugged device with no IOMMU window tries any DMA at all."""

    def attack() -> str:
        platform.machine.iommu.dma_read("evil-usb", 0x1000, 16)
        return "unregistered device performed DMA"

    return run_attack("dma: unregistered device", attack)
