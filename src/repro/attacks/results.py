"""Attack outcome reporting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError, SecurityViolation


@dataclass(frozen=True)
class AttackResult:
    """What happened when an attack ran."""

    name: str
    blocked: bool
    detail: str

    def __str__(self) -> str:
        verdict = "BLOCKED" if self.blocked else "SUCCEEDED"
        return f"[{verdict}] {self.name}: {self.detail}"


def run_attack(name: str, attack: Callable[[], str]) -> AttackResult:
    """Run an attack function.

    The attack returns a string describing what it *achieved* (attack
    succeeded), or raises — a :class:`SecurityViolation` (or another
    simulation error on the attack path) means the platform blocked it.
    """
    try:
        achieved = attack()
    except SecurityViolation as exc:
        return AttackResult(name=name, blocked=True, detail=str(exc))
    except ReproError as exc:
        return AttackResult(name=name, blocked=True,
                            detail=f"{type(exc).__name__}: {exc}")
    return AttackResult(name=name, blocked=False, detail=achieved)
