"""Command-line driver: ``python -m repro.staticcheck [paths...]``.

Exit codes follow repro-lint: ``0`` when the analysis exactly matches
the committed baseline (or is clean), ``1`` when there are new
findings *or* stale baseline entries, ``2`` for usage errors.  The
baseline is resolved from ``--baseline``, then ``[tool.repro-
staticcheck] baseline`` relative to the nearest ``pyproject.toml``,
then an empty baseline (every finding is new).

``--write-baseline`` re-records the current unsuppressed findings and
exits 0 — the accept-current-debt workflow described in
``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.staticcheck.analyzer import analyze
from repro.staticcheck.baseline import Baseline
from repro.staticcheck.config import (StaticcheckConfig, find_config)
from repro.staticcheck.findings import ALL_SC_RULES
from repro.staticcheck.report import (render_json, render_sarif,
                                      render_text)


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.staticcheck`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="Whole-program static verifier: determinism, "
                    "charge coverage, trust-boundary taint.")
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline file (default: from [tool.repro-staticcheck])")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings as the accepted baseline")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline; exit 1 on any finding")
    parser.add_argument(
        "--disable", action="append", default=[], metavar="RULE",
        help="disable a rule (repeatable), e.g. --disable SC005")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit")
    return parser


def _resolve_baseline(args: argparse.Namespace,
                      config: StaticcheckConfig) -> Path | None:
    if args.baseline is not None:
        return args.baseline
    return config.baseline_path()


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(ALL_SC_RULES.items()):
            print(f"{rule}  {desc}")
        return 0

    paths = [Path(p) for p in args.paths]
    for path in paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2

    config = find_config(paths[0])
    if args.disable:
        config.disable = tuple(config.disable) + tuple(args.disable)

    findings = analyze(paths, config)

    if args.no_baseline:
        delta = Baseline().delta(findings)
    else:
        baseline_path = _resolve_baseline(args, config)
        if args.write_baseline:
            if baseline_path is None:
                print("error: no baseline path (pass --baseline or add "
                      "[tool.repro-staticcheck] to pyproject.toml)",
                      file=sys.stderr)
                return 2
            written = Baseline.from_findings(
                findings, baseline_path).write()
            active = sum(1 for f in findings if not f.suppressed)
            print(f"wrote {active} finding(s) to {written}")
            return 0
        delta = Baseline.load(baseline_path).delta(findings)

    renderer = {"text": render_text, "json": render_json,
                "sarif": render_sarif}[args.format]
    try:
        print(renderer(findings, delta))
    except BrokenPipeError:                       # pragma: no cover
        return 0
    return 0 if delta.clean else 1


if __name__ == "__main__":                        # pragma: no cover
    sys.exit(main())
