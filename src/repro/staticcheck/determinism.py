"""SC001/SC002: the whole-program determinism pass.

Cycle results must be a pure function of the op sequence.  This pass
takes every function defined in the cycle-charged layers (the
``determinism-roots`` path fragments — hw, monitor, osim) as a root,
walks the conservative call graph, and flags any reachable reference
to a nondeterminism source:

* wall clocks (``time.time``/``perf_counter``/``clock_gettime``/...,
  ``datetime.now``) — including renamed imports and local aliases;
* unseeded randomness (``random.*`` module functions, ``random.Random()``
  with no seed, ``os.urandom``, ``uuid.uuid4``, ``secrets``);
* host environment (``os.environ``, ``os.getenv``);
* ``id()`` — address-derived values change run to run.

Traversal is cut at the ``determinism-exclude`` fragments (telemetry,
profiler, flight recorder: host-side observers that never feed the
simulated clock) and at the sanctioned ``sanctioned-clocks`` symbols.
Each finding carries the full call chain from a charged root to the
forbidden source.

SC002 flags ``for`` loops over raw ``set`` values whose bodies feed a
cycle charge or a digest: Python set iteration order depends on
insertion history and hashing, so such loops can reorder charges or
digest input between otherwise identical runs.
"""

from __future__ import annotations

import ast

from repro.staticcheck.callgraph import CHARGE_ATTRS, FunctionFacts
from repro.staticcheck.config import StaticcheckConfig
from repro.staticcheck.findings import StaticFinding
from repro.staticcheck.project import FunctionInfo, Project
from repro.staticcheck.reach import (bfs_reachable, chain_to,
                                     charging_functions,
                                     functions_reaching)

#: Canonical dotted wall-clock sources (alias-resolved before matching).
WALL_CLOCKS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.thread_time", "time.thread_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: ``random`` module functions that draw from the global (unseeded) RNG.
RANDOM_FUNCS = frozenset({
    "random", "randrange", "randint", "randbytes", "choice", "choices",
    "shuffle", "sample", "uniform", "getrandbits", "seed", "gauss",
    "normalvariate", "triangular",
})

#: Other entropy sources that vary run to run.
ENTROPY_SOURCES = frozenset({
    "os.urandom", "uuid.uuid4", "uuid.uuid1",
    "secrets.token_bytes", "secrets.token_hex", "secrets.randbits",
    "random.SystemRandom",
})

#: Digest producers for the SC002 set-iteration hazard.
_DIGEST_ATTRS = frozenset({"state_digest", "hexdigest", "digest"})


def _classify(dotted: str, has_args: bool,
              sanctioned: frozenset[str]) -> str | None:
    """Human label for a forbidden external reference, or ``None``."""
    if dotted in sanctioned:
        return None
    if dotted in WALL_CLOCKS:
        return "wall clock"
    if dotted.startswith("os.environ") or dotted in ("os.getenv",
                                                     "os.getenvb"):
        return "host environment"
    if dotted in ENTROPY_SOURCES:
        return "OS entropy"
    if dotted == "builtins.id":
        return "id()-derived value"
    root, _, leaf = dotted.partition(".")
    if root == "random":
        if leaf in RANDOM_FUNCS:
            return "unseeded randomness"
        if leaf == "Random" and not has_args:
            return "unseeded randomness"
    return None


def _is_root(info: FunctionInfo, config: StaticcheckConfig) -> bool:
    if config.path_excluded(info.path):
        return False
    if any(fragment in info.path for fragment in config.determinism_exclude):
        return False
    return any(fragment in info.path for fragment in config.determinism_roots)


def _raw_set_exprs(fn: ast.AST) -> dict[int, set[str]]:
    """Set-valued local names per function, plus direct set expressions.

    Returns ``{lineno_of_for: {reason}}`` for every ``for`` loop whose
    iterable is statically a raw ``set`` (literal, comprehension,
    ``set(...)`` call, or a local assigned from one).
    """
    set_names: set[str] = set()

    def is_raw_set(expr: ast.AST) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
                and expr.func.id in ("set", "frozenset"):
            return True
        if isinstance(expr, ast.BinOp) and isinstance(
                expr.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            return is_raw_set(expr.left) or is_raw_set(expr.right)
        return isinstance(expr, ast.Name) and expr.id in set_names

    loops: dict[int, set[str]] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and is_raw_set(node.value):
            set_names.add(node.targets[0].id)
    for node in ast.walk(fn):
        if isinstance(node, ast.For) and is_raw_set(node.iter):
            loops.setdefault(node.lineno, set()).add(
                ast.unparse(node.iter))
    return loops


def run(project: Project, facts: dict[str, FunctionFacts],
        config: StaticcheckConfig) -> list[StaticFinding]:
    """Run the determinism pass; returns unsorted findings."""
    sanctioned = frozenset(config.sanctioned_clocks)
    sanctioned_quals = {
        clock.rsplit(".", 1)[0] + ":" + clock.rsplit(".", 1)[1]
        for clock in sanctioned}

    roots = [q for q, info in project.functions.items()
             if _is_root(info, config)]

    def descend(qualname: str) -> bool:
        info = project.functions.get(qualname)
        if info is None:
            return True
        if qualname in sanctioned_quals:
            return False
        if config.path_excluded(info.path):
            return False
        return not any(fragment in info.path
                       for fragment in config.determinism_exclude)

    parents = bfs_reachable(roots, facts, descend)

    findings: list[StaticFinding] = []
    seen: set[tuple[str, int, str]] = set()
    for qualname in parents:
        if not descend(qualname):
            continue                  # sources inside excluded observers
        info = project.functions[qualname]
        fn_facts = facts[qualname]
        refs = list(fn_facts.external_refs)
        # Calls carry argument presence, needed for random.Random(seed).
        arg_presence = {(site.external, site.line): site.has_args
                        for site in fn_facts.calls
                        if site.external is not None}
        for dotted, line in refs:
            has_args = arg_presence.get((dotted, line), False)
            label = _classify(dotted, has_args, sanctioned)
            if label is None:
                continue
            key = (info.path, qualname, dotted)
            if key in seen:
                continue
            seen.add(key)
            chain = chain_to(parents, qualname) + [dotted]
            findings.append(StaticFinding(
                rule="SC001", path=info.path, line=line,
                symbol=qualname, sink=dotted,
                message=(f"{label} {dotted} is reachable from "
                         f"cycle-charged code ({chain[0]}); simulated "
                         f"results must be a pure function of the op "
                         f"sequence"),
                chain=chain))

    findings.extend(_set_iteration_hazards(project, facts, config, parents))
    return findings


def _set_iteration_hazards(project: Project,
                           facts: dict[str, FunctionFacts],
                           config: StaticcheckConfig,
                           parents: dict[str, str | None]
                           ) -> list[StaticFinding]:
    """SC002: raw-set loops whose bodies charge cycles or feed digests."""
    chargers = charging_functions(facts)
    digesters = functions_reaching(_feeds_digest, facts)

    findings: list[StaticFinding] = []
    for qualname in parents:
        info = project.functions.get(qualname)
        if info is None or not any(
                fragment in info.path
                for fragment in config.determinism_roots):
            continue
        fn_facts = facts[qualname]
        loops = _raw_set_exprs(info.node)
        if not loops:
            continue
        spans = _loop_spans(info.node)
        for line, exprs in loops.items():
            start, end = spans.get(line, (line, line))
            hazards = []
            for site in fn_facts.calls:
                if not (start < site.line <= end):
                    continue
                if site.attr in CHARGE_ATTRS:
                    hazards.append(f"charge at line {site.line}")
                elif site.callee is not None and (
                        site.callee in chargers
                        or site.callee in digesters):
                    hazards.append(f"{site.callee} at line {site.line}")
                elif site.attr in _DIGEST_ATTRS:
                    hazards.append(f"digest at line {site.line}")
            if hazards:
                expr = sorted(exprs)[0]
                findings.append(StaticFinding(
                    rule="SC002", path=info.path, line=line,
                    symbol=qualname, sink=expr,
                    message=(f"iteration over unordered set {expr!r} "
                             f"feeds {hazards[0]}; set order varies "
                             f"between runs — sort the elements or use "
                             f"an ordered container"),
                    chain=[qualname]))
    return findings


def _feeds_digest(qualname: str, fn_facts: FunctionFacts) -> bool:
    """Does this function directly produce a digest?"""
    for site in fn_facts.calls:
        if site.attr in _DIGEST_ATTRS:
            return True
        if site.external is not None and site.external.startswith(
                "hashlib."):
            return True
        if site.callee is not None and \
                ".crypto.hashes:" in site.callee:
            return True
    return False


def _loop_spans(fn: ast.AST) -> dict[int, tuple[int, int]]:
    """(start, end) line spans for every ``for`` loop in ``fn``."""
    spans: dict[int, tuple[int, int]] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.For):
            end = getattr(node, "end_lineno", node.lineno)
            spans[node.lineno] = (node.lineno, end or node.lineno)
    return spans
