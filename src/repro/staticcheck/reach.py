"""Reachability utilities over the conservative call graph.

Chains are tracked with BFS parent pointers so every finding can print
the *shortest* witnessing call path from a root to the violating
function — long enough to explain, short enough to read.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

from repro.staticcheck.callgraph import CHARGE_ATTRS, FunctionFacts


def bfs_reachable(roots: Iterable[str],
                  facts: dict[str, FunctionFacts],
                  descend: Callable[[str], bool] | None = None
                  ) -> dict[str, str | None]:
    """Breadth-first reachability from ``roots``.

    Returns ``{qualname: parent_qualname_or_None}`` for every function
    reached.  ``descend(qualname)`` gates whether edges *out of* a
    function are followed (the function itself is still recorded, so a
    sanctioned module boundary is visible in chains but not traversed).
    """
    parents: dict[str, str | None] = {}
    queue: deque[str] = deque()
    for root in roots:
        if root not in parents:
            parents[root] = None
            queue.append(root)
    while queue:
        current = queue.popleft()
        if descend is not None and not descend(current):
            continue
        current_facts = facts.get(current)
        if current_facts is None:
            continue
        for site in current_facts.calls:
            callee = site.callee
            if callee is None or callee in parents:
                continue
            parents[callee] = current
            queue.append(callee)
    return parents


def chain_to(parents: dict[str, str | None], target: str) -> list[str]:
    """The root -> ... -> target path recorded by :func:`bfs_reachable`."""
    chain = [target]
    cursor = parents.get(target)
    seen = {target}
    while cursor is not None and cursor not in seen:
        chain.append(cursor)
        seen.add(cursor)
        cursor = parents.get(cursor)
    chain.reverse()
    return chain


def functions_reaching(predicate: Callable[[str, FunctionFacts], bool],
                       facts: dict[str, FunctionFacts]) -> set[str]:
    """Every function from which a ``predicate`` function is reachable.

    Computed by reverse propagation: seed with the functions satisfying
    ``predicate`` directly, then walk callers until a fixed point.
    """
    reverse: dict[str, set[str]] = {}
    seeds: set[str] = set()
    for qualname, fn_facts in facts.items():
        if predicate(qualname, fn_facts):
            seeds.add(qualname)
        for site in fn_facts.calls:
            if site.callee is not None:
                reverse.setdefault(site.callee, set()).add(qualname)
    reached = set(seeds)
    queue = deque(seeds)
    while queue:
        current = queue.popleft()
        for caller in reverse.get(current, ()):
            if caller not in reached:
                reached.add(caller)
                queue.append(caller)
    return reached


def charging_functions(facts: dict[str, FunctionFacts]) -> set[str]:
    """Functions that transitively reach a cycle-charge site."""
    return functions_reaching(
        lambda _q, f: any(site.attr in CHARGE_ATTRS for site in f.calls),
        facts)
