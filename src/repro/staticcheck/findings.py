"""Finding records for the whole-program static verifier.

A :class:`StaticFinding` extends the repro-lint notion of a finding
with the *call chain* that witnesses the violation — the path through
the conservative call graph from a charged root (or untrusted origin)
to the forbidden sink.  Fingerprints deliberately exclude line numbers
so the committed baseline survives unrelated edits to the same file.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

#: rule id -> short description, used by reports and the SARIF driver.
ALL_SC_RULES: dict[str, str] = {
    "SC001": "nondeterministic source reachable from cycle-charged code",
    "SC002": "unordered set iteration feeding charges or digests",
    "SC003": "entry point reaches no cycle-charge site",
    "SC004": "fastpath branches charge different category sets",
    "SC005": "entry point has an uncharged exit path",
    "SC006": "untrusted value reaches a trusted sink unmarshalled",
}


@dataclass
class StaticFinding:
    """One analyzer hit, with its witnessing call chain."""

    rule: str
    path: str
    line: int
    symbol: str
    message: str
    chain: list[str] = field(default_factory=list)
    sink: str = ""
    suppressed: bool = False
    justification: str | None = None

    def fingerprint(self) -> str:
        """A line-number-free stable identity for baseline matching."""
        text = "\x1f".join((self.rule, self.path, self.symbol, self.sink))
        return hashlib.sha256(text.encode()).hexdigest()[:16]

    def as_dict(self) -> dict:
        """JSON-report form."""
        out = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "chain": list(self.chain),
            "fingerprint": self.fingerprint(),
            "suppressed": self.suppressed,
        }
        if self.sink:
            out["sink"] = self.sink
        if self.justification is not None:
            out["justification"] = self.justification
        return out

    def render(self) -> str:
        """Human-readable block: location line plus the call chain."""
        tag = " (suppressed)" if self.suppressed else ""
        lines = [f"{self.path}:{self.line}: {self.rule}{tag}: "
                 f"{self.message}"]
        if self.chain:
            lines.append("    call chain: " + " -> ".join(self.chain))
        return "\n".join(lines)

    def sort_key(self) -> tuple:
        """Deterministic report ordering."""
        return (self.path, self.line, self.rule, self.symbol, self.sink)
