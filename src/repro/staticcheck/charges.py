"""SC003/SC004/SC005: interprocedural charge-coverage passes.

SC003 is repro-lint R003 made whole-program: every configured public
entry point (``RustMonitor`` hypercalls, the world-switch engine, the
memory-subsystem hot methods) must *reach* a cycle-charge site —
``_charge_hypercall``, ``CycleCounter.charge`` or ``Cpu.charge_steps``
— through any chain of calls, not just in its own body.

SC005 is the all-paths refinement: an entry point that does charge
somewhere may still have an exit path that returns a real value without
ever charging.  A lightweight path walk over the statement tree finds
such exits; ``return <constant>`` guards (the zero-work early-outs) and
``raise`` terminations are exempt, and a call to a function that itself
charges on every path counts as charging.

SC004 checks the PR-6 fastpath equivalence contract statically: inside
any function that branches on :mod:`repro.hw.fastpath` state
(``fastpath.MODE``, ``fastpath.enabled()``, a local bound to
``fastpath.np``), the guarded fast branch and the surrounding legacy
code must charge the *same set* of category expressions, transitively
through their callees.  A drifted category set means the A/B paths
could no longer be bit-identical — caught here without running either.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch

from repro.staticcheck.callgraph import (CHARGE_ATTRS, CallSite,
                                         FunctionFacts)
from repro.staticcheck.config import StaticcheckConfig
from repro.staticcheck.findings import StaticFinding
from repro.staticcheck.project import FunctionInfo, Project, dotted_of
from repro.staticcheck.reach import bfs_reachable, chain_to

_FASTPATH_MODULE = "repro.hw.fastpath"

_SKIP_METHODS = frozenset({
    "__init__", "__repr__", "__len__", "__str__", "__post_init__"})


def _entry_points(project: Project,
                  config: StaticcheckConfig) -> list[FunctionInfo]:
    entries = []
    for qualname, info in project.functions.items():
        if not info.is_public or info.is_property:
            continue
        if info.name in _SKIP_METHODS:
            continue
        if config.path_excluded(info.path):
            continue
        if any(fnmatch(qualname, pattern)
               for pattern in config.charge_entry_points):
            entries.append(info)
    return entries


def _exemption_for(info: FunctionInfo,
                   config: StaticcheckConfig) -> str | None:
    short = f"{info.class_name}.{info.name}" if info.class_name \
        else info.name
    for pattern, why in config.charge_exemptions.items():
        if fnmatch(short, pattern) or fnmatch(info.qualname, pattern):
            return why
    return None


def run(project: Project, facts: dict[str, FunctionFacts],
        config: StaticcheckConfig) -> list[StaticFinding]:
    """Run the charge-coverage passes; returns unsorted findings."""
    findings: list[StaticFinding] = []
    walker = _MustChargeIndex(project, facts)

    for info in _entry_points(project, config):
        if _exemption_for(info, config) is not None:
            continue
        parents = bfs_reachable([info.qualname], facts)
        charge_holder = next(
            (q for q in parents
             if any(s.attr in CHARGE_ATTRS for s in facts[q].calls)),
            None)
        if charge_holder is None:
            findings.append(StaticFinding(
                rule="SC003", path=info.path, line=info.lineno,
                symbol=info.qualname, sink="no-charge",
                message=(f"public entry point {info.name}() reaches no "
                         f"cycle-charge site through any call chain; "
                         f"un-charged entry points silently skew every "
                         f"cycle table"),
                chain=[info.qualname]))
            continue
        for line, expr in walker.uncharged_exits(info.qualname):
            findings.append(StaticFinding(
                rule="SC005", path=info.path, line=line,
                symbol=info.qualname, sink=f"return {expr}",
                message=(f"{info.name}() charges on some paths (e.g. via "
                         f"{' -> '.join(chain_to(parents, charge_holder))})"
                         f" but the exit at line {line} returns "
                         f"{expr!r} without charging"),
                chain=[info.qualname]))

    findings.extend(_fastpath_parity(project, facts, config))
    return findings


# ---------------------------------------------------------- must-charge ----


class _MustChargeIndex:
    """Memoized all-paths charge analysis over the statement tree."""

    def __init__(self, project: Project,
                 facts: dict[str, FunctionFacts]) -> None:
        self.project = project
        self.facts = facts
        self._memo: dict[str, bool] = {}
        self._stack: set[str] = set()

    # -- public API -----------------------------------------------------------

    def must_charge(self, qualname: str) -> bool:
        """True when every execution of ``qualname`` charges cycles
        (guard returns of constants and raises excepted)."""
        if qualname in self._memo:
            return self._memo[qualname]
        if qualname in self._stack:
            return False              # recursion: conservative
        info = self.project.functions.get(qualname)
        if info is None:
            return False
        self._stack.add(qualname)
        try:
            exits, charged_end, terminal = self._walk(
                info.node.body, False, qualname)
            result = not exits and (charged_end or terminal)
            self._memo[qualname] = result
        finally:
            self._stack.discard(qualname)
        return result

    def uncharged_exits(self, qualname: str) -> list[tuple[int, str]]:
        """(line, returned-expr) for every non-guard uncharged return."""
        info = self.project.functions.get(qualname)
        if info is None:
            return []
        exits, _, _ = self._walk(info.node.body, False, qualname)
        return exits

    # -- the walk -------------------------------------------------------------

    def _charging_span(self, expr: ast.AST | None, qualname: str) -> bool:
        """Does evaluating ``expr`` unconditionally charge?"""
        if expr is None:
            return False
        start = getattr(expr, "lineno", None)
        end = getattr(expr, "end_lineno", start)
        if start is None:
            return False
        for site in self.facts[qualname].calls:
            if not (start <= site.line <= (end or start)):
                continue
            if site.attr in CHARGE_ATTRS:
                return True
            if site.callee is not None and self.must_charge(site.callee):
                return True
        return False

    def _charging_stmt(self, stmt: ast.stmt, qualname: str) -> bool:
        return self._charging_span(stmt, qualname)

    def _walk(self, stmts: list[ast.stmt], charged: bool,
              qualname: str) -> tuple[list[tuple[int, str]], bool, bool]:
        """Walk a statement list.

        Returns ``(uncharged_exits, charged_at_fallthrough, terminal)``
        where *terminal* means every path through the list ends in a
        ``return``/``raise`` (there is no fall-through).
        """
        exits: list[tuple[int, str]] = []
        for stmt in stmts:
            if isinstance(stmt, ast.Return):
                if not charged and not self._charging_span(
                        stmt.value, qualname):
                    if stmt.value is not None and not isinstance(
                            stmt.value, ast.Constant):
                        exits.append((stmt.lineno,
                                      ast.unparse(stmt.value)))
                return exits, charged, True
            if isinstance(stmt, ast.Raise):
                return exits, charged, True
            if isinstance(stmt, ast.If):
                if self._charging_span(stmt.test, qualname):
                    charged = True
                body_exits, body_charged, body_term = self._walk(
                    stmt.body, charged, qualname)
                else_exits, else_charged, else_term = self._walk(
                    stmt.orelse, charged, qualname)
                exits.extend(body_exits)
                exits.extend(else_exits)
                if body_term and else_term and stmt.orelse:
                    return exits, charged, True
                live = []
                if not body_term:
                    live.append(body_charged)
                if not else_term:
                    live.append(else_charged)
                charged = bool(live) and all(live)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if self._charging_span(item.context_expr, qualname):
                        charged = True
                body_exits, charged, body_term = self._walk(
                    stmt.body, charged, qualname)
                exits.extend(body_exits)
                if body_term:
                    return exits, charged, True
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                # Loops may run zero times: collect exits from the body
                # but never let its charges count for the fall-through.
                body_exits, _, _ = self._walk(stmt.body, charged,
                                              qualname)
                exits.extend(body_exits)
                else_exits, charged, _ = self._walk(stmt.orelse, charged,
                                                    qualname)
                exits.extend(else_exits)
            elif isinstance(stmt, ast.Try):
                body_exits, body_charged, _ = self._walk(
                    stmt.body, charged, qualname)
                exits.extend(body_exits)
                for handler in stmt.handlers:
                    handler_exits, _, _ = self._walk(
                        handler.body, charged, qualname)
                    exits.extend(handler_exits)
                final_exits, final_charged, _ = self._walk(
                    stmt.finalbody, body_charged, qualname)
                exits.extend(final_exits)
                charged = final_charged if stmt.finalbody else body_charged
            else:
                if self._charging_stmt(stmt, qualname):
                    charged = True
        return exits, charged, False


# ------------------------------------------------------- fastpath parity ----


def _fastpath_test(expr: ast.AST, aliases: dict[str, str],
                   local: dict[str, str]) -> bool:
    """Does this ``if`` test read :mod:`repro.hw.fastpath` state?"""
    for node in ast.walk(expr):
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = dotted_of(node, aliases, local)
            if dotted is not None and dotted.startswith(
                    _FASTPATH_MODULE + "."):
                return True
    return False


class _CategoryIndex:
    """Memoized transitive charge-category sets per function."""

    def __init__(self, facts: dict[str, FunctionFacts]) -> None:
        self.facts = facts
        self._memo: dict[str, frozenset[str]] = {}
        self._stack: set[str] = set()

    def categories(self, qualname: str) -> frozenset[str]:
        """Every category expression ``qualname`` may charge under."""
        if qualname in self._memo:
            return self._memo[qualname]
        if qualname in self._stack or qualname not in self.facts:
            return frozenset()
        self._stack.add(qualname)
        try:
            out = {c.category for c in self.facts[qualname].charges}
            for site in self.facts[qualname].calls:
                if site.callee is not None:
                    out |= self.categories(site.callee)
            result = frozenset(out)
            self._memo[qualname] = result
        finally:
            self._stack.discard(qualname)
        return result

    def span_categories(self, qualname: str, start: int,
                        end: int) -> frozenset[str]:
        """Categories charged by the calls inside a line span."""
        out: set[str] = set()
        fn_facts = self.facts[qualname]
        for charge in fn_facts.charges:
            if start <= charge.line <= end:
                out.add(charge.category)
        for site in fn_facts.calls:
            if start <= site.line <= end and site.callee is not None:
                out |= self.categories(site.callee)
        return frozenset(out)


def _span(nodes: list[ast.stmt]) -> tuple[int, int]:
    start = min(n.lineno for n in nodes)
    end = max(getattr(n, "end_lineno", n.lineno) or n.lineno
              for n in nodes)
    return start, end


def _fastpath_parity(project: Project, facts: dict[str, FunctionFacts],
                     config: StaticcheckConfig) -> list[StaticFinding]:
    """SC004: guarded fast branches must charge identical category sets."""
    findings: list[StaticFinding] = []
    index = _CategoryIndex(facts)
    from repro.staticcheck.callgraph import _local_aliases

    for qualname, info in project.functions.items():
        if config.path_excluded(info.path):
            continue
        if _FASTPATH_MODULE.replace(".", "/") + ".py" in info.path:
            continue                  # the switch itself is exempt
        module = project.modules[info.module_name]
        local = _local_aliases(info.node, module)
        fn_span = (info.node.body[0].lineno,
                   getattr(info.node, "end_lineno", info.lineno)
                   or info.lineno)
        for node in ast.walk(info.node):
            if not isinstance(node, ast.If) or not _fastpath_test(
                    node.test, module.aliases, local):
                continue
            fast_start, fast_end = _span(node.body)
            fast = index.span_categories(qualname, fast_start, fast_end)
            if node.orelse:
                legacy_start, legacy_end = _span(node.orelse)
                legacy = index.span_categories(qualname, legacy_start,
                                               legacy_end)
            else:
                # Early-return idiom: legacy is the rest of the function.
                whole = index.span_categories(qualname, *fn_span)
                outside = index.span_categories(
                    qualname, fn_span[0], node.lineno - 1) \
                    | index.span_categories(qualname, fast_end + 1,
                                            fn_span[1])
                legacy = frozenset(outside) or whole - fast
            if fast == legacy:
                continue
            findings.append(StaticFinding(
                rule="SC004", path=info.path, line=node.lineno,
                symbol=qualname,
                sink="|".join(sorted(fast ^ legacy)),
                message=(f"fastpath branch at line {node.lineno} charges "
                         f"categories {sorted(fast) or '[]'} but the "
                         f"legacy path charges {sorted(legacy) or '[]'}; "
                         f"the A/B equivalence contract requires "
                         f"identical category sets"),
                chain=[qualname]))
    return findings
