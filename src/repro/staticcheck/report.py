"""Report rendering: text for humans, JSON for tooling, SARIF for CI.

SARIF output follows the 2.1.0 schema closely enough for GitHub code
scanning: one run, one driver with the SC rule table, one result per
finding with the witnessing call chain folded into the message and the
baseline fingerprint under ``partialFingerprints``.  Baselined
findings are emitted at level ``note`` so only *new* findings surface
as errors.
"""

from __future__ import annotations

import json

from repro.staticcheck.baseline import BaselineDelta
from repro.staticcheck.findings import ALL_SC_RULES, StaticFinding

_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


def render_text(findings: list[StaticFinding],
                delta: BaselineDelta | None = None) -> str:
    """Human-readable report: new findings first, then the gate tally."""
    new_fps = {f.fingerprint() for f in delta.new} if delta else None
    lines: list[str] = []
    for finding in findings:
        if finding.suppressed:
            continue
        marker = ""
        if new_fps is not None and finding.fingerprint() not in new_fps:
            marker = " [baselined]"
        block = finding.render()
        if marker:
            head, _, rest = block.partition("\n")
            block = head + marker + ("\n" + rest if rest else "")
        lines.append(block)
    if delta is not None:
        for entry in delta.stale:
            lines.append(
                f"stale baseline entry {entry['fingerprint']}: "
                f"{entry['rule']} {entry['symbol']} ({entry['path']}) "
                f"no longer fires — remove it from the baseline")
        lines.append(
            f"staticcheck: {len(delta.new)} new, {delta.matched} "
            f"baselined, {len(delta.stale)} stale")
    else:
        active = sum(1 for f in findings if not f.suppressed)
        lines.append(f"staticcheck: {active} finding(s)")
    return "\n".join(lines)


def render_json(findings: list[StaticFinding],
                delta: BaselineDelta | None = None) -> str:
    """Machine-readable report mirroring the text output."""
    doc: dict = {
        "findings": [f.as_dict() for f in findings],
    }
    if delta is not None:
        doc["gate"] = {
            "new": [f.fingerprint() for f in delta.new],
            "stale": [e["fingerprint"] for e in delta.stale],
            "matched": delta.matched,
            "clean": delta.clean,
        }
    return json.dumps(doc, indent=2, sort_keys=True)


def render_sarif(findings: list[StaticFinding],
                 delta: BaselineDelta | None = None) -> str:
    """SARIF 2.1.0 document for the CI artifact upload."""
    new_fps = {f.fingerprint() for f in delta.new} if delta else None
    results = []
    for finding in findings:
        if finding.suppressed:
            continue
        if new_fps is None or finding.fingerprint() in new_fps:
            level = "error"
        else:
            level = "note"
        text = finding.message
        if finding.chain:
            text += " | call chain: " + " -> ".join(finding.chain)
        results.append({
            "ruleId": finding.rule,
            "level": level,
            "message": {"text": text},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {"startLine": max(finding.line, 1)},
                },
            }],
            "partialFingerprints": {
                "reproStaticcheck/v1": finding.fingerprint(),
            },
        })
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-staticcheck",
                    "informationUri":
                        "docs/STATIC_ANALYSIS.md",
                    "rules": [
                        {
                            "id": rule,
                            "shortDescription": {"text": desc},
                        }
                        for rule, desc in sorted(ALL_SC_RULES.items())
                    ],
                },
            },
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2)
