"""Conservative call-graph construction over a loaded :class:`Project`.

Each project function gets a :class:`FunctionFacts` record: outgoing
call sites (resolved precisely through imports, ``self`` dispatch and
class bases where possible, falling back to name-based method dispatch
otherwise), every *external* dotted reference the body makes
(``time.time``, ``os.environ`` — calls or bare attribute access), and
the cycle-charge sites with their category expressions.

Nested functions and lambdas are folded into their enclosing top-level
function: a closure's effects are attributed to the function that
creates it, which over-approximates reachability in the safe direction.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.staticcheck.project import (ClassInfo, FunctionInfo, ModuleInfo,
                                       Project, dotted_of)

#: Attribute names that charge simulated cycles when called.
CHARGE_ATTRS = frozenset({"charge", "charge_steps", "_charge_hypercall"})

#: External roots worth recording as references (nondeterminism sources).
_EXTERNAL_ROOTS = frozenset({
    "os", "time", "datetime", "random", "builtins", "hashlib", "uuid",
    "secrets", "socket",
})

#: Bare builtin calls recorded as external references when unshadowed.
_TRACKED_BUILTINS = frozenset({"id", "hash", "set", "sorted", "frozenset"})


@dataclass
class CallSite:
    """One outgoing call edge (or unresolved dispatch fan-out entry)."""

    line: int
    attr: str                        # trailing name of the call target
    callee: str | None = None        # project qualname when resolved
    external: str | None = None      # canonical dotted external target
    receiver: str = ""               # unparsed receiver expression
    precise: bool = True             # False for name-based dispatch
    arg_count: int = 0
    has_args: bool = False           # any positional/keyword arguments


@dataclass
class ChargeSite:
    """One cycle-charge call with its normalized category expression."""

    line: int
    attr: str
    category: str


@dataclass
class FunctionFacts:
    """Per-function analysis facts."""

    calls: list[CallSite] = field(default_factory=list)
    external_refs: list[tuple[str, int]] = field(default_factory=list)
    charges: list[ChargeSite] = field(default_factory=list)


def _local_aliases(fn: ast.AST, module: ModuleInfo) -> dict[str, str]:
    """In-function assignment aliases (``t = time.time``)."""
    local: dict[str, str] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            dotted = dotted_of(node.value, module.aliases, local)
            if dotted is not None:
                local[node.targets[0].id] = dotted
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            # Function-level imports: fold into the local alias map.
            if isinstance(node, ast.Import):
                for item in node.names:
                    bound = item.asname or item.name.split(".")[0]
                    local[bound] = item.name if item.asname else bound
            else:
                base = node.module or ""
                for item in node.names:
                    if item.name == "*":
                        continue
                    local[item.asname or item.name] = \
                        f"{base}.{item.name}" if base else item.name
    return local


def _category_of(call: ast.Call, attr: str) -> str:
    """Normalized charge-category expression for a charge call."""
    if attr == "_charge_hypercall":
        return "'hypercall'"
    expr: ast.AST | None = None
    if len(call.args) >= 2:
        expr = call.args[1]
    else:
        for kw in call.keywords:
            if kw.arg == "category":
                expr = kw.value
    if expr is None:
        return "'misc'"
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return repr(expr.value)
    return ast.unparse(expr)


class _BodyVisitor(ast.NodeVisitor):
    """Collects calls and external references in one function body."""

    def __init__(self, project: Project, module: ModuleInfo,
                 info: FunctionInfo, local: dict[str, str]) -> None:
        self.project = project
        self.module = module
        self.info = info
        self.local = local
        self.facts = FunctionFacts()
        self._shadowed = self._collect_shadowed(info.node)

    @staticmethod
    def _collect_shadowed(fn: ast.AST) -> set[str]:
        shadowed: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.arg):
                shadowed.add(node.arg)
            elif isinstance(node, ast.Name) \
                    and isinstance(node.ctx, ast.Store):
                shadowed.add(node.id)
        return shadowed

    # -- reference recording --------------------------------------------------

    def _record_external(self, dotted: str, line: int) -> None:
        if dotted.split(".")[0] in _EXTERNAL_ROOTS:
            self.facts.external_refs.append((dotted, line))

    def _add_call(self, site: CallSite) -> None:
        self.facts.calls.append(site)

    # -- visitors -------------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # Bare attribute chains (``os.environ[...]``) count as external
        # references even when nothing is called.
        dotted = dotted_of(node, self.module.aliases, self.local)
        if dotted is not None:
            self._record_external(dotted, node.lineno)
            return                    # the chain root is covered
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self._handle_call(node)
        # Visit arguments (and receiver subtrees for unresolved calls);
        # _handle_call already recorded the func chain when resolvable.
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)
        if isinstance(node.func, ast.Attribute):
            dotted = dotted_of(node.func, self.module.aliases, self.local)
            if dotted is None:
                self.visit(node.func.value)

    def _handle_call(self, node: ast.Call) -> None:
        func = node.func
        has_args = bool(node.args or node.keywords)
        nargs = len(node.args)

        if isinstance(func, ast.Name):
            self._handle_name_call(node, func, has_args, nargs)
            return
        if not isinstance(func, ast.Attribute):
            return                    # call of a computed expression
        attr = func.attr
        receiver = ast.unparse(func.value)

        # self.<attr>(...): resolve within the class and its bases.
        if isinstance(func.value, ast.Name) and func.value.id == "self" \
                and self.info.class_name is not None:
            resolved = self.project.resolve_method(
                self.module, self.info.class_name, attr)
            if resolved is not None:
                self._emit(node, attr, callee=resolved, receiver="self")
                return

        dotted = dotted_of(func, self.module.aliases, self.local)
        if dotted is not None:
            symbol = self.project.lookup_dotted(dotted)
            if isinstance(symbol, FunctionInfo):
                self._emit(node, attr, callee=symbol, receiver=receiver)
                return
            if isinstance(symbol, ClassInfo):
                self._emit_constructor(node, symbol, receiver)
                return
            self._record_external(dotted, node.lineno)
            self._emit(node, attr, external=dotted, receiver=receiver)
            return

        # Unresolvable receiver: conservative name-based dispatch to
        # every project method with this name.
        targets = self.project.method_index.get(attr, ())
        if targets:
            for target in targets:
                self._emit(node, attr, callee=target, receiver=receiver,
                           precise=False)
        else:
            self._emit(node, attr, receiver=receiver, precise=False)

    def _handle_name_call(self, node: ast.Call, func: ast.Name,
                          has_args: bool, nargs: int) -> None:
        name = func.id
        dotted = self.local.get(name) or self.module.aliases.get(name)
        if dotted is None and name in self.module.functions:
            self._emit(node, name, callee=self.module.functions[name])
            return
        if dotted is None and name in self.module.classes:
            self._emit_constructor(node, self.module.classes[name], "")
            return
        if dotted is None:
            if name in _TRACKED_BUILTINS and name not in self._shadowed:
                dotted = f"builtins.{name}"
                self._record_external(dotted, node.lineno)
                self._emit(node, name, external=dotted)
            return
        symbol = self.project.lookup_dotted(dotted)
        if isinstance(symbol, FunctionInfo):
            self._emit(node, name, callee=symbol)
        elif isinstance(symbol, ClassInfo):
            self._emit_constructor(node, symbol, "")
        else:
            self._record_external(dotted, node.lineno)
            self._emit(node, name, external=dotted)

    def _emit_constructor(self, node: ast.Call, cls: ClassInfo,
                          receiver: str) -> None:
        ctor = self.project.constructor_of(cls)
        if ctor is not None:
            self._emit(node, "__init__", callee=ctor,
                       receiver=receiver or cls.name)

    def _emit(self, node: ast.Call, attr: str, *,
              callee: FunctionInfo | None = None,
              external: str | None = None, receiver: str = "",
              precise: bool = True) -> None:
        site = CallSite(
            line=node.lineno, attr=attr,
            callee=callee.qualname if callee is not None else None,
            external=external, receiver=receiver, precise=precise,
            arg_count=len(node.args),
            has_args=bool(node.args or node.keywords))
        self._add_call(site)
        if attr in CHARGE_ATTRS:
            self.facts.charges.append(ChargeSite(
                line=node.lineno, attr=attr,
                category=_category_of(node, attr)))


def build_facts(project: Project) -> dict[str, FunctionFacts]:
    """Analysis facts for every function in the project."""
    facts: dict[str, FunctionFacts] = {}
    for qualname, info in project.functions.items():
        module = project.modules[info.module_name]
        local = _local_aliases(info.node, module)
        visitor = _BodyVisitor(project, module, info, local)
        for stmt in info.node.body:
            visitor.visit(stmt)
        facts[qualname] = visitor.facts
    return facts


def callees_of(facts: FunctionFacts) -> list[str]:
    """Project qualnames this function may call."""
    return [site.callee for site in facts.calls if site.callee is not None]
