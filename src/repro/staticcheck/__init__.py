"""Whole-program static verifier for the reproduction's core contracts.

``repro-lint`` (:mod:`repro.sanitizer.rules`) checks one line at a time;
the runtime sanitizer checks one *run* at a time.  This package closes
the gap between them: a conservative whole-program analysis over
``src/repro`` — real symbol table, import/alias resolution, class
method dispatch — running three interprocedural passes:

determinism (SC001/SC002)
    No function reachable from cycle-charged code (the hw/monitor/osim
    hot paths) may transitively reach a wall clock, unseeded randomness,
    ``os.environ`` or an ``id()``-keyed value, except the sanctioned
    ``repro.profiler.wall.host_clock_ns``.  Unordered-``set`` iteration
    feeding charges or digests is flagged too.  Violations print the
    full call chain from the charged root to the forbidden source.

charge coverage (SC003/SC004/SC005)
    Every configured public ``RustMonitor`` / hw entry point must reach
    a ``_charge_hypercall`` / ``CycleCounter.charge`` /
    ``Cpu.charge_steps`` site (the interprocedural form of repro-lint
    R003), with uncharged exit paths reported separately; and the
    legacy/fast branches behind :mod:`repro.hw.fastpath` dispatch must
    statically charge identical category sets — the PR-6 equivalence
    contract, checked without running an A/B sweep.

boundary taint (SC006)
    Values originating in the untrusted layers (``sdk``, ``apps``,
    ``osim``) must flow through the marshalling/validation layers
    (``edger8r``/EDL/uRTS/tRTS, ``repro.hw.memaccess``, or a public
    ``RustMonitor`` hypercall) before reaching trusted monitor/hw
    sinks such as raw physical memory, frame pools or page tables.

Run it with ``python -m repro.staticcheck src/repro`` (text, JSON or
SARIF output).  Findings are gated against a committed baseline so CI
fails only on *new* violations, and suppression pragmas share the
``# repro-lint: disable=SCnnn -- why`` syntax with repro-lint.  See
``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from repro.staticcheck.analyzer import analyze
from repro.staticcheck.baseline import Baseline, BaselineDelta
from repro.staticcheck.config import StaticcheckConfig, load_staticcheck_config
from repro.staticcheck.findings import ALL_SC_RULES, StaticFinding
from repro.staticcheck.project import Project

__all__ = [
    "ALL_SC_RULES",
    "Baseline",
    "BaselineDelta",
    "Project",
    "StaticFinding",
    "StaticcheckConfig",
    "analyze",
    "load_staticcheck_config",
]
