"""Committed findings baseline with an exact two-sided gate.

The baseline pins the *set* of accepted findings by line-number-free
fingerprint.  The gate fails in both directions: a finding whose
fingerprint is absent from the baseline is **new** (a regression), and
a baseline entry no analysis result matches is **stale** (the debt was
paid — the entry must be deleted so the baseline only ever shrinks).
Line numbers are excluded from fingerprints so unrelated edits to a
file never churn the baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.staticcheck.findings import StaticFinding

_VERSION = 1


@dataclass
class BaselineDelta:
    """Gate outcome: what is new, what is stale, what matched."""

    new: list[StaticFinding] = field(default_factory=list)
    stale: list[dict] = field(default_factory=list)
    matched: int = 0

    @property
    def clean(self) -> bool:
        """True when the analysis exactly matches the baseline."""
        return not self.new and not self.stale


class Baseline:
    """A committed set of accepted findings, keyed by fingerprint."""

    def __init__(self, entries: dict[str, dict] | None = None,
                 path: Path | None = None) -> None:
        self.entries = entries or {}
        self.path = path

    @classmethod
    def load(cls, path: Path | None) -> "Baseline":
        """Read a baseline file; a missing path means an empty baseline."""
        if path is None or not path.is_file():
            return cls(path=path)
        data = json.loads(path.read_text())
        entries = {item["fingerprint"]: item
                   for item in data.get("findings", [])}
        return cls(entries, path=path)

    @classmethod
    def from_findings(cls, findings: list[StaticFinding],
                      path: Path | None = None) -> "Baseline":
        """Build a baseline accepting every unsuppressed finding given."""
        entries: dict[str, dict] = {}
        for finding in findings:
            if finding.suppressed:
                continue
            entries[finding.fingerprint()] = {
                "fingerprint": finding.fingerprint(),
                "rule": finding.rule,
                "path": finding.path,
                "symbol": finding.symbol,
                "sink": finding.sink,
            }
        return cls(entries, path=path)

    def write(self, path: Path | None = None) -> Path:
        """Serialize deterministically (sorted, stable keys)."""
        target = path or self.path
        if target is None:
            raise ValueError("no baseline path to write to")
        payload = {
            "version": _VERSION,
            "findings": sorted(
                self.entries.values(),
                key=lambda e: (e["path"], e["rule"], e["symbol"],
                               e["sink"])),
        }
        target.write_text(json.dumps(payload, indent=2) + "\n")
        return target

    def delta(self, findings: list[StaticFinding]) -> BaselineDelta:
        """Exact gate: new findings and stale entries both count."""
        delta = BaselineDelta()
        seen: set[str] = set()
        for finding in findings:
            if finding.suppressed:
                continue
            fp = finding.fingerprint()
            seen.add(fp)
            if fp in self.entries:
                delta.matched += 1
            else:
                delta.new.append(finding)
        for fp, entry in sorted(self.entries.items()):
            if fp not in seen:
                delta.stale.append(entry)
        return delta
