"""Pass orchestration: load, build facts, run passes, apply pragmas.

:func:`analyze` is the single programmatic entry point — the CLI, the
test suite and the mutation corpus all go through it.  Suppression
pragmas use the repro-lint comment syntax (``# repro-lint:
disable=SC001 -- why``) and are honored at either the finding's line
or the enclosing function's ``def`` line; suppressed findings stay in
the result, flagged, so reports can show what was waived and why.
"""

from __future__ import annotations

from pathlib import Path

from repro.staticcheck import charges, determinism, taint
from repro.staticcheck.callgraph import build_facts
from repro.staticcheck.config import StaticcheckConfig
from repro.staticcheck.findings import StaticFinding
from repro.staticcheck.project import Project


def analyze(paths: list[Path],
            config: StaticcheckConfig | None = None,
            overlay: dict[str, str] | None = None) -> list[StaticFinding]:
    """Run every enabled pass over ``paths``; findings come back sorted.

    ``overlay`` maps POSIX path strings to replacement source text so
    callers (the mutation tests) can inject violations without copying
    the tree.
    """
    config = config or StaticcheckConfig()
    project = Project.load(list(paths), overlay)
    facts = build_facts(project)

    raw: list[StaticFinding] = []
    if config.rule_enabled("SC001") or config.rule_enabled("SC002"):
        raw.extend(determinism.run(project, facts, config))
    if any(config.rule_enabled(r) for r in ("SC003", "SC004", "SC005")):
        raw.extend(charges.run(project, facts, config))
    if config.rule_enabled("SC006"):
        raw.extend(taint.run(project, facts, config))

    findings: list[StaticFinding] = []
    for finding in raw:
        if not config.rule_enabled(finding.rule):
            continue
        if config.path_excluded(finding.path):
            continue
        why = project.suppression_for(
            finding.path, finding.line, finding.rule)
        if why is None:
            info = project.functions.get(finding.symbol)
            if info is not None and info.path == finding.path:
                why = project.suppression_for(
                    finding.path, info.lineno, finding.rule)
        if why is not None:
            finding.suppressed = True
            finding.justification = why
        findings.append(finding)
    findings.sort(key=StaticFinding.sort_key)
    return findings
