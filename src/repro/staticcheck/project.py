"""Symbol table construction for the whole-program verifier.

Loads every ``.py`` file under the scan roots, assigns each a dotted
module name, and indexes top-level functions, classes and methods.
Import aliases (``import time as t``, ``from time import time as t``,
relative imports, re-exports) are resolved per module so later passes
can turn any name or attribute chain back into a canonical dotted path.

The loader accepts an *overlay* mapping of path -> replacement source,
which the mutation tests use to inject violations into the real tree
without copying it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.sanitizer.rules import Suppressions, parse_suppressions


@dataclass
class FunctionInfo:
    """One top-level function or class method."""

    name: str
    qualname: str                    # "repro.hw.memmodel:MemorySubsystem.touch"
    module_name: str
    path: str                        # POSIX-style, as scanned
    lineno: int
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None
    decorators: tuple[str, ...] = ()

    @property
    def is_public(self) -> bool:
        """Public per the repro-lint convention (no leading underscore)."""
        return not self.name.startswith("_")

    @property
    def is_property(self) -> bool:
        """True for ``@property``/``@cached_property`` accessors."""
        return any(d in ("property", "cached_property")
                   for d in self.decorators)

    def display(self) -> str:
        """Short chain-segment form (module:Class.method)."""
        return self.qualname


@dataclass
class ClassInfo:
    """One top-level class and its method table."""

    name: str
    module_name: str
    lineno: int
    bases: tuple[str, ...] = ()      # base-class expressions, unparsed
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module: tree, aliases and top-level symbols."""

    name: str                        # dotted, e.g. "repro.hw.memmodel"
    path: str                        # POSIX-style
    tree: ast.Module
    source: str
    aliases: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """The package holding this module (itself if ``__init__``)."""
        if self.path.endswith("__init__.py"):
            return self.name
        return self.name.rpartition(".")[0]


def _module_name_for(file: Path, source_root: Path) -> str:
    """Dotted module name of ``file`` relative to ``source_root``."""
    rel = file.relative_to(source_root).with_suffix("")
    parts = list(rel.parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _source_root_for(root: Path) -> Path:
    """The directory dotted names are computed from.

    ``src/repro`` scans as package ``repro`` (names relative to ``src``);
    a directory that merely *contains* packages scans as itself.
    """
    if root.is_file():
        return root.parent
    if (root / "__init__.py").exists() or root.name == "repro":
        return root.parent
    return root


def _resolve_relative(module: str, package: str, level: int) -> str:
    """Absolute module named by ``from <dots><module> import ...``."""
    parts = package.split(".") if package else []
    if level > 1:
        parts = parts[: len(parts) - (level - 1)]
    if module:
        parts.append(module)
    return ".".join(parts)


def _collect_aliases(tree: ast.Module, package: str) -> dict[str, str]:
    """name -> canonical dotted target, from this module's imports and
    simple module-level assignments (``np = fastpath.np``)."""
    aliases: dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.asname is not None:
                    aliases[item.asname] = item.name
                else:
                    # ``import a.b`` binds the *top* name to package a.
                    aliases[item.name.split(".")[0]] = \
                        item.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = (node.module or "") if node.level == 0 else \
                _resolve_relative(node.module or "", package, node.level)
            for item in node.names:
                if item.name == "*":
                    continue
                bound = item.asname or item.name
                aliases[bound] = f"{base}.{item.name}" if base else item.name
        elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            dotted = dotted_of(node.value, aliases)
            if dotted is not None:
                aliases[node.targets[0].id] = dotted
    return aliases


def dotted_of(expr: ast.AST, aliases: dict[str, str],
              local: dict[str, str] | None = None) -> str | None:
    """Canonical dotted path of a Name/Attribute chain, or ``None``.

    ``local`` maps in-function assignment aliases (``t = time.time``)
    and takes precedence over module-level import aliases.
    """
    if isinstance(expr, ast.Name):
        if local is not None and expr.id in local:
            return local[expr.id]
        return aliases.get(expr.id)
    if isinstance(expr, ast.Attribute):
        base = dotted_of(expr.value, aliases, local)
        if base is None:
            return None
        return f"{base}.{expr.attr}"
    return None


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef
                     ) -> tuple[str, ...]:
    names = []
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, ast.Attribute):
            names.append(target.attr)
    return tuple(names)


class Project:
    """The loaded source tree: modules, functions, and dispatch indexes."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: method name -> every project method with that name, for the
        #: conservative attribute-dispatch fallback.
        self.method_index: dict[str, list[FunctionInfo]] = {}
        self.suppressions: dict[str, Suppressions] = {}

    # ------------------------------------------------------------- loading --

    @classmethod
    def load(cls, roots: list[Path],
             overlay: dict[str, str] | None = None) -> "Project":
        """Parse every ``.py`` under ``roots`` into a symbol table.

        ``overlay`` maps POSIX path strings to replacement source text
        (mutation-test injection without touching the real tree).
        """
        project = cls()
        overlay = overlay or {}
        seen: set[str] = set()
        for root in roots:
            source_root = _source_root_for(root)
            files = [root] if root.is_file() else sorted(root.rglob("*.py"))
            for file in files:
                posix = file.as_posix()
                if posix in seen:
                    continue
                seen.add(posix)
                source = overlay.get(posix)
                if source is None:
                    source = file.read_text()
                name = _module_name_for(file, source_root)
                project._add_module(name, posix, source)
        extra = set(overlay) - seen
        for posix in sorted(extra):
            # Overlay-only files: new modules injected by tests.
            root = _source_root_for(roots[0])
            name = _module_name_for(Path(posix), root)
            project._add_module(name, posix, overlay[posix])
        return project

    def _add_module(self, name: str, posix: str, source: str) -> None:
        tree = ast.parse(source, filename=posix)
        module = ModuleInfo(name=name, path=posix, tree=tree, source=source)
        module.aliases = _collect_aliases(tree, module.package)
        self.modules[name] = module
        self.suppressions[posix] = parse_suppressions(source)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                info = ClassInfo(
                    name=node.name, module_name=name, lineno=node.lineno,
                    bases=tuple(ast.unparse(b) for b in node.bases))
                module.classes[node.name] = info
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        self._add_function(module, item,
                                           class_name=node.name)

    def _add_function(self, module: ModuleInfo,
                      node: ast.FunctionDef | ast.AsyncFunctionDef,
                      class_name: str | None) -> None:
        if class_name is None:
            qualname = f"{module.name}:{node.name}"
        else:
            qualname = f"{module.name}:{class_name}.{node.name}"
        info = FunctionInfo(
            name=node.name, qualname=qualname, module_name=module.name,
            path=module.path, lineno=node.lineno, node=node,
            class_name=class_name, decorators=_decorator_names(node))
        self.functions[qualname] = info
        if class_name is None:
            module.functions[node.name] = info
        else:
            module.classes[class_name].methods[node.name] = info
            self.method_index.setdefault(node.name, []).append(info)

    # ----------------------------------------------------------- resolving --

    def longest_module_prefix(self, dotted: str) -> tuple[str, list[str]]:
        """Split ``dotted`` into (known module name, trailing parts)."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.modules:
                return candidate, parts[cut:]
        return "", parts

    def lookup_dotted(self, dotted: str,
                      _depth: int = 0) -> FunctionInfo | ClassInfo | None:
        """Project symbol for a canonical dotted path, if any.

        Follows re-export chains (``from repro.profiler.wall import
        host_clock_ns`` re-exported by ``repro.profiler``) up to a small
        depth.  Returns ``None`` for external or unknown names.
        """
        if _depth > 4:
            return None
        module_name, rest = self.longest_module_prefix(dotted)
        if not module_name:
            return None
        module = self.modules[module_name]
        if not rest:
            return None
        head = rest[0]
        if len(rest) == 1:
            if head in module.functions:
                return module.functions[head]
            if head in module.classes:
                return module.classes[head]
        elif len(rest) == 2 and rest[0] in module.classes:
            return module.classes[rest[0]].methods.get(rest[1])
        # Re-export: the name is imported into ``module`` from elsewhere.
        if head in module.aliases:
            target = ".".join([module.aliases[head], *rest[1:]])
            return self.lookup_dotted(target, _depth + 1)
        return None

    def resolve_method(self, module: ModuleInfo, class_name: str,
                       attr: str, _seen: frozenset = frozenset()
                       ) -> FunctionInfo | None:
        """Resolve ``self.<attr>`` against a class and its project bases."""
        if class_name in _seen:
            return None
        cls = module.classes.get(class_name)
        if cls is None:
            try:
                base_expr = ast.parse(class_name, mode="eval").body
            except SyntaxError:
                return None
            symbol = self.lookup_dotted(
                dotted_of(base_expr, module.aliases) or "")
            if not isinstance(symbol, ClassInfo):
                return None
            cls = symbol
            module = self.modules[cls.module_name]
        if attr in cls.methods:
            return cls.methods[attr]
        for base in cls.bases:
            found = self.resolve_method(self.modules[cls.module_name],
                                        base, attr,
                                        _seen | {class_name})
            if found is not None:
                return found
        return None

    def constructor_of(self, cls: ClassInfo) -> FunctionInfo | None:
        """``__init__`` of ``cls`` or the nearest project base class."""
        module = self.modules[cls.module_name]
        return self.resolve_method(module, cls.name, "__init__")

    def suppression_for(self, path: str, line: int,
                        rule: str) -> str | None:
        """Shared repro-lint pragma lookup for SC rules."""
        sup = self.suppressions.get(path)
        if sup is None:
            return None
        return sup.lookup(line, rule)
