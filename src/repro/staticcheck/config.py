"""Configuration for the static verifier: ``[tool.repro-staticcheck]``.

All keys are optional; the defaults encode the repository's actual
trust and charging structure so a bare ``python -m repro.staticcheck
src/repro`` is meaningful.  Path values are substring fragments matched
against POSIX-style file paths, exactly like ``[tool.repro-lint]``.

Recognized keys::

    [tool.repro-staticcheck]
    disable = ["SC005"]                 # rules turned off entirely
    exclude = ["repro/vendored/"]       # paths skipped by every pass
    baseline = "staticcheck-baseline.json"   # relative to pyproject
    determinism-roots = ["repro/hw/", "repro/monitor/", "repro/osim/"]
    determinism-exclude = ["repro/telemetry/"]   # traversal cut here
    sanctioned-clocks = ["repro.profiler.wall.host_clock_ns"]
    charge-entry-points = ["repro.monitor.rustmonitor:RustMonitor.*"]
    charge-exempt = ["RustMonitor.initialize_keys -- boot-time setup"]
    taint-sources = ["repro/apps/", "repro/osim/", "repro/sdk/"]
    taint-barriers = ["repro/hw/memaccess.py", ...]
    taint-sinks = ["repro.hw.phys:PhysicalMemory.read", ...]  # extras
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path

from repro.sanitizer.lintconfig import find_pyproject

DEFAULT_BASELINE = "staticcheck-baseline.json"

DEFAULT_DETERMINISM_ROOTS = (
    "repro/hw/", "repro/monitor/", "repro/osim/")

# Observer layers the determinism traversal does not descend into:
# telemetry/profiler/flight-recorder code legitimately reads host state
# (and is barred from feeding the simulated clock by repro-lint R001 +
# the runtime zero-perturbation pins instead).
DEFAULT_DETERMINISM_EXCLUDE = (
    "repro/telemetry/", "repro/profiler/", "repro/flightrec/",
    "repro/bench/", "repro/analysis/", "repro/sanitizer/",
    "repro/staticcheck/")

DEFAULT_SANCTIONED_CLOCKS = ("repro.profiler.wall.host_clock_ns",)

DEFAULT_CHARGE_ENTRY_POINTS = (
    "repro.monitor.rustmonitor:RustMonitor.*",
    "repro.monitor.world:WorldSwitchEngine.*",
    "repro.hw.memmodel:MemorySubsystem.touch",
    "repro.hw.memmodel:MemorySubsystem.touch_sequential",
    "repro.hw.memmodel:MemorySubsystem.compute",
    "repro.hw.memmodel:MemorySubsystem.memcpy",
    "repro.hw.cpu:Cpu.charge_steps",
)

DEFAULT_CHARGE_EXEMPT: tuple[str, ...] = ()

DEFAULT_TAINT_SOURCES = ("repro/apps/", "repro/osim/", "repro/sdk/")

DEFAULT_TAINT_BARRIERS = (
    "repro/sdk/edger8r.py", "repro/sdk/edl.py", "repro/sdk/urts.py",
    "repro/sdk/trts.py", "repro/hw/memaccess.py")


def _split_justified(entries: tuple[str, ...]) -> dict[str, str]:
    """Parse ``"pattern -- why"`` entries into pattern -> justification."""
    out: dict[str, str] = {}
    for entry in entries:
        pattern, _, why = entry.partition("--")
        out[pattern.strip()] = why.strip()
    return out


@dataclass
class StaticcheckConfig:
    """Resolved ``[tool.repro-staticcheck]`` settings."""

    disable: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    baseline: str = DEFAULT_BASELINE
    determinism_roots: tuple[str, ...] = DEFAULT_DETERMINISM_ROOTS
    determinism_exclude: tuple[str, ...] = DEFAULT_DETERMINISM_EXCLUDE
    sanctioned_clocks: tuple[str, ...] = DEFAULT_SANCTIONED_CLOCKS
    charge_entry_points: tuple[str, ...] = DEFAULT_CHARGE_ENTRY_POINTS
    charge_exempt: tuple[str, ...] = DEFAULT_CHARGE_EXEMPT
    taint_sources: tuple[str, ...] = DEFAULT_TAINT_SOURCES
    taint_barriers: tuple[str, ...] = DEFAULT_TAINT_BARRIERS
    taint_sinks: tuple[str, ...] = ()
    pyproject_dir: Path | None = None

    def __post_init__(self) -> None:
        self.charge_exemptions: dict[str, str] = \
            _split_justified(self.charge_exempt)

    def rule_enabled(self, rule: str) -> bool:
        """Whether ``rule`` runs at all."""
        return rule not in self.disable

    def path_excluded(self, path: str) -> bool:
        """Globally out-of-scope paths (matched as substrings)."""
        return any(fragment in path for fragment in self.exclude)

    def baseline_path(self) -> Path | None:
        """Absolute baseline location, if a pyproject anchored one."""
        if self.pyproject_dir is None:
            return None
        return self.pyproject_dir / self.baseline


_KEYS = {
    "disable": "disable",
    "exclude": "exclude",
    "determinism-roots": "determinism_roots",
    "determinism-exclude": "determinism_exclude",
    "sanctioned-clocks": "sanctioned_clocks",
    "charge-entry-points": "charge_entry_points",
    "charge-exempt": "charge_exempt",
    "taint-sources": "taint_sources",
    "taint-barriers": "taint_barriers",
    "taint-sinks": "taint_sinks",
}


def load_staticcheck_config(pyproject: Path | None) -> StaticcheckConfig:
    """Read ``[tool.repro-staticcheck]``; defaults when absent."""
    if pyproject is None or not pyproject.is_file():
        return StaticcheckConfig()
    with open(pyproject, "rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("repro-staticcheck", {})
    kwargs: dict = {"pyproject_dir": pyproject.parent}
    for toml_key, attr in _KEYS.items():
        if toml_key in table:
            kwargs[attr] = tuple(table[toml_key])
    if "baseline" in table:
        kwargs["baseline"] = str(table["baseline"])
    return StaticcheckConfig(**kwargs)


def find_config(start: Path) -> StaticcheckConfig:
    """Locate the nearest pyproject.toml above ``start`` and load it."""
    return load_staticcheck_config(find_pyproject(start.resolve()))
