"""``python -m repro.staticcheck`` — run the whole-program verifier."""

from __future__ import annotations

import sys

from repro.staticcheck.cli import main

sys.exit(main())
