"""SC006: trust-boundary taint analysis.

HyperEnclave's security argument rests on the marshalling discipline:
everything crossing from the untrusted world (apps, the simulated OS,
the SDK's app-side surface) into the trusted monitor/hardware layers
must pass through a validation barrier — the edger8r-generated
bridges, ``memaccess.copy_in``/``copy_out`` range checks, or a public
``RustMonitor`` hypercall entry (which sanitizes before acting).

This pass walks the *precise* call graph from every function defined
under a ``taint-sources`` path.  Traversal stops at barrier functions
(files listed in ``taint-barriers``) and at public methods of the
monitor classes — those are the sanctioned crossings.  If the walk
still reaches a trusted sink (raw physical memory, the frame pool,
page tables, enclave page mutation, a private ``RustMonitor`` helper),
untrusted data has a path around the barrier and the finding prints
the witnessing chain.

Only precise call edges are followed: name-based dispatch fan-out
(``handle.read(...)`` matching ``PhysicalMemory.read``) would drown
real escapes in noise.  At the final hop a fuzzy edge is still
reported when the receiver text names the sink object (``phys``,
``pool``, ``page_table``) — that catches direct attribute reaches
without the fan-out explosion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.staticcheck.callgraph import FunctionFacts
from repro.staticcheck.config import StaticcheckConfig
from repro.staticcheck.findings import StaticFinding
from repro.staticcheck.project import FunctionInfo, Project
from repro.staticcheck.reach import chain_to

#: Monitor classes whose public methods are sanctioned crossings.
_BARRIER_CLASSES = frozenset({"RustMonitor", "WorldSwitchEngine"})


@dataclass(frozen=True)
class SinkSpec:
    """One trusted-sink shape: class, method names, receiver hints."""

    class_name: str | None
    methods: frozenset[str]
    hints: tuple[str, ...]
    label: str


_SINK_SPECS = (
    SinkSpec("PhysicalMemory",
             frozenset({"read", "write", "read_u64", "write_u64",
                        "zero_frame", "set_owner"}),
             ("phys",), "raw physical memory"),
    SinkSpec("FramePool", frozenset({"alloc", "free"}),
             ("pool", "frame"), "EPC frame pool"),
    SinkSpec("PageTable",
             frozenset({"map", "unmap", "destroy", "set_flags"}),
             ("page_table", "pt", "npt", "ept"), "page tables"),
    SinkSpec("Enclave",
             frozenset({"add_page", "commit_page", "protect_page",
                        "register_marshalling_buffer"}),
             ("enclave",), "enclave page state"),
    SinkSpec(None, frozenset({"swap_in_page", "swap_out_page"}),
             (), "EPC swap engine"),
)

_TRUSTED_FRAGMENTS = ("repro/hw/", "repro/monitor/")


def _build_sinks(project: Project) -> dict[str, str]:
    """qualname -> human label for every trusted-sink function."""
    sinks: dict[str, str] = {}
    for qualname, info in project.functions.items():
        if not any(f in info.path for f in _TRUSTED_FRAGMENTS):
            continue
        for spec in _SINK_SPECS:
            if spec.class_name is None:
                if info.class_name is None and info.name in spec.methods:
                    sinks[qualname] = spec.label
            elif info.class_name == spec.class_name \
                    and info.name in spec.methods:
                sinks[qualname] = spec.label
        if info.class_name == "RustMonitor" and not info.is_public:
            sinks[qualname] = "private monitor helper"
    return sinks


def _sink_hints(name: str) -> tuple[str, ...]:
    for spec in _SINK_SPECS:
        if name in spec.methods:
            return spec.hints
    return ()


def _is_barrier(info: FunctionInfo, config: StaticcheckConfig) -> bool:
    if any(fragment in info.path for fragment in config.taint_barriers):
        return True
    return info.class_name in _BARRIER_CLASSES and info.is_public


def run(project: Project, facts: dict[str, FunctionFacts],
        config: StaticcheckConfig) -> list[StaticFinding]:
    """Run the taint pass; returns unsorted findings."""
    sinks = _build_sinks(project)
    for extra in config.taint_sinks:
        sinks.setdefault(extra, "configured sink")

    roots = []
    for qualname, info in project.functions.items():
        if config.path_excluded(info.path):
            continue
        if not any(f in info.path for f in config.taint_sources):
            continue
        if _is_barrier(info, config):
            continue
        roots.append(qualname)

    # Precise-edge BFS with barrier cuts, parent pointers for chains.
    parents: dict[str, str | None] = {q: None for q in roots}
    queue = list(roots)
    while queue:
        current = queue.pop(0)
        info = project.functions.get(current)
        if info is None or _is_barrier(info, config):
            continue
        for site in facts[current].calls:
            if not site.precise or site.callee is None:
                continue
            if site.callee in sinks or site.callee in parents:
                continue              # sinks are reported, not traversed
            parents[site.callee] = current
            queue.append(site.callee)

    findings: list[StaticFinding] = []
    seen: set[tuple[str, int, str]] = set()
    for qualname in parents:
        info = project.functions.get(qualname)
        if info is None or _is_barrier(info, config):
            continue
        for site in facts[qualname].calls:
            if site.callee is None or site.callee not in sinks:
                continue
            if not site.precise:
                hints = _sink_hints(site.attr)
                receiver = site.receiver.lower()
                if not any(h in receiver for h in hints):
                    continue
            key = (info.path, site.line, site.callee)
            if key in seen:
                continue
            seen.add(key)
            chain = chain_to(parents, qualname) + [site.callee]
            findings.append(StaticFinding(
                rule="SC006", path=info.path, line=site.line,
                symbol=qualname, sink=site.callee,
                message=(f"untrusted value flow reaches {sinks[site.callee]}"
                         f" ({site.callee.split(':')[-1]}) without passing"
                         f" a marshalling barrier; route through the "
                         f"edger8r bridge, memaccess, or a public monitor"
                         f" entry point"),
                chain=chain))
    return findings
