"""Exact cycle-attribution profiler over the telemetry span tree.

Layers on :mod:`repro.telemetry`: spans already record exact simulated
cycle intervals and their full ancestor stack, so profiles here are a
complete accounting (self-cycles sum to root-span cycles), never a
sample.  See docs/OBSERVABILITY.md for the file formats and a "reading a
cycle profile" walkthrough.

* :func:`profile_document` / :func:`machine_profile` — build profiles;
* :mod:`repro.profiler.collapsed` — flamegraph-ready collapsed stacks;
* :mod:`repro.profiler.diff` — top cycle-delta frames between two runs;
* :mod:`repro.profiler.wall` — host wall-time / efficiency attribution
  over the same stacks (dual-domain frames);
* ``python -m repro.profiler report|collapse|diff|wall|efficiency`` —
  the CLI.
"""

from repro.profiler.core import (PROFILE_KIND, PROFILE_VERSION, FrameStats,
                                 machine_profile, profile_document,
                                 profile_summary, self_total,
                                 validate_profile)
from repro.profiler.collapsed import (collapsed_lines, parse_collapsed,
                                      write_collapsed)
from repro.profiler.diff import FrameDelta, diff_profiles, diff_report
from repro.profiler.wall import (efficiency_frames, efficiency_report,
                                 has_wall_data, host_clock_ns,
                                 subsystem_wall_shares, wall_collapsed_lines,
                                 wall_frames, wall_report, wall_summary,
                                 write_wall_collapsed)

__all__ = [
    "PROFILE_KIND", "PROFILE_VERSION", "FrameStats",
    "machine_profile", "profile_document", "profile_summary",
    "self_total", "validate_profile",
    "collapsed_lines", "parse_collapsed", "write_collapsed",
    "FrameDelta", "diff_profiles", "diff_report",
    "efficiency_frames", "efficiency_report", "has_wall_data",
    "host_clock_ns", "subsystem_wall_shares", "wall_collapsed_lines",
    "wall_frames", "wall_report", "wall_summary", "write_wall_collapsed",
]
