"""Exact cycle-attribution profiles over the telemetry span tree.

Unlike a sampling profiler, this one is *exact*: every span records the
precise simulated-cycle interval it covered and the exact ancestor stack
it opened under (:attr:`repro.telemetry.SpanRecord.path`), so the frame
aggregation below is a complete accounting — the self-cycles of all
frames sum to the cycles of all root spans, bit for bit.

The profiler only *reads* recorded spans; it charges nothing to the
simulated clock, so profiles can be taken on calibrated benchmark runs
without perturbing Table 1/2 (pinned by
``tests/profiler/test_profiler_invariants.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.core import Telemetry, UnclosedSpanError

PROFILE_VERSION = 1
PROFILE_KIND = "hyperenclave-cycle-profile"


@dataclass
class FrameStats:
    """Aggregated cycles for one unique call stack."""

    stack: tuple[str, ...]
    calls: int = 0
    cycles: int = 0          # inclusive: this frame plus its children
    self_cycles: int = 0     # exclusive: minus enclosed child spans
    wall_ns: int = 0         # inclusive host wall-time (dual domain)
    self_wall_ns: int = 0    # exclusive host wall-time

    def as_dict(self) -> dict:
        return {"stack": list(self.stack), "calls": self.calls,
                "cycles": self.cycles, "self_cycles": self.self_cycles,
                "wall_ns": self.wall_ns, "self_wall_ns": self.self_wall_ns}


def _bump(table: dict, key: str, amount: int) -> None:
    table[key] = table.get(key, 0) + amount


def machine_profile(telemetry: Telemetry, label: str = "machine", *,
                    strict: bool = True) -> dict:
    """One machine's exact cycle profile as a JSON-ready dict.

    Raises :class:`~repro.telemetry.UnclosedSpanError` when spans are
    still open (their cycles are not yet attributed); ``strict=False``
    profiles the closed spans anyway and reports the open names.
    """
    open_names = telemetry.open_span_names()
    if open_names and strict:
        raise UnclosedSpanError(
            f"profiling {label!r} with {len(open_names)} span(s) still "
            f"open: {' > '.join(open_names)}")

    frames: dict[tuple[str, ...], FrameStats] = {}
    by_enclave: dict[str, int] = {}
    by_cpu: dict[str, int] = {}
    root_cycles = 0
    root_wall_ns = 0
    for record in telemetry.spans:
        stack = record.path or (record.name,)
        stats = frames.get(stack)
        if stats is None:
            stats = frames[stack] = FrameStats(stack)
        stats.calls += 1
        stats.cycles += record.dur_cycles
        stats.self_cycles += record.self_cycles
        stats.wall_ns += record.dur_wall_ns
        stats.self_wall_ns += record.self_wall_ns
        if record.depth == 0:
            root_cycles += record.dur_cycles
            root_wall_ns += record.dur_wall_ns
        _bump(by_enclave, str(record.labels.get("enclave", "-")),
              record.self_cycles)
        _bump(by_cpu, str(record.labels.get("cpu", 0)),
              record.self_cycles)

    return {
        "label": label,
        "total_span_cycles": root_cycles,
        "total_span_wall_ns": root_wall_ns,
        "spans_recorded": len(telemetry.spans),
        # A full ring means the oldest spans were dropped and totals are
        # a lower bound; profiles of bounded runs never hit this.
        "truncated": len(telemetry.spans) == telemetry.spans.maxlen,
        "open_spans": open_names,
        "frames": [frames[key].as_dict() for key in sorted(frames)],
        "by_enclave": by_enclave,
        "by_cpu": by_cpu,
    }


def _merge_frames(machines: list[dict]) -> list[dict]:
    merged: dict[tuple[str, ...], FrameStats] = {}
    for snap in machines:
        for frame in snap["frames"]:
            key = tuple(frame["stack"])
            stats = merged.get(key)
            if stats is None:
                stats = merged[key] = FrameStats(key)
            stats.calls += frame["calls"]
            stats.cycles += frame["cycles"]
            stats.self_cycles += frame["self_cycles"]
            # Wall fields are absent from pre-wall-profiler documents;
            # merging one keeps the wall totals a lower bound.
            stats.wall_ns += frame.get("wall_ns", 0)
            stats.self_wall_ns += frame.get("self_wall_ns", 0)
    return [merged[key].as_dict() for key in sorted(merged)]


def profile_document(items: list[tuple[str, Telemetry]], *,
                     strict: bool = True) -> dict:
    """The full profile: per-machine sections plus a combined frame table.

    ``combined`` merges frames by stack across machines; its self-cycle
    sum equals the sum of every machine's root-span cycles.
    """
    machines = [machine_profile(tel, label, strict=strict)
                for label, tel in items]
    return {
        "version": PROFILE_VERSION,
        "kind": PROFILE_KIND,
        "machines": machines,
        "combined": {
            "total_span_cycles": sum(m["total_span_cycles"]
                                     for m in machines),
            "total_span_wall_ns": sum(m["total_span_wall_ns"]
                                      for m in machines),
            "frames": _merge_frames(machines),
        },
    }


def profile_summary(document: dict, n: int = 10) -> dict:
    """The compact digest embedded in ``BENCH_*.json`` artifacts."""
    combined = document["combined"]
    top = sorted(combined["frames"],
                 key=lambda f: (-f["self_cycles"], f["stack"]))[:n]
    return {
        "total_span_cycles": combined["total_span_cycles"],
        "machines": len(document["machines"]),
        "top_self": [{"stack": ";".join(f["stack"]),
                      "self_cycles": f["self_cycles"],
                      "calls": f["calls"]} for f in top],
    }


def validate_profile(document) -> None:
    """Raise ``ValueError`` unless ``document`` is a profile document."""
    if not isinstance(document, dict):
        raise ValueError("profile: expected an object")
    if document.get("version") != PROFILE_VERSION:
        raise ValueError(
            f"profile: unsupported version {document.get('version')!r}")
    if document.get("kind") != PROFILE_KIND:
        raise ValueError(f"profile: unexpected kind {document.get('kind')!r}")
    for where in ("machines", ):
        if not isinstance(document.get(where), list):
            raise ValueError(f"profile: missing {where} list")
    combined = document.get("combined")
    if not isinstance(combined, dict) or "frames" not in combined:
        raise ValueError("profile: missing combined.frames")
    for section in document["machines"] + [combined]:
        for frame in section["frames"]:
            stack = frame.get("stack")
            if not isinstance(stack, list) or not stack:
                raise ValueError(f"profile: bad frame stack {stack!r}")
            for field in ("calls", "cycles", "self_cycles"):
                if not isinstance(frame.get(field), (int, float)):
                    raise ValueError(
                        f"profile: frame {stack} missing {field}")


def self_total(section: dict) -> int:
    """Sum of self-cycles over one section's frames (== root cycles)."""
    return sum(frame["self_cycles"] for frame in section["frames"])
