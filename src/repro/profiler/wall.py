"""Wall-clock attribution over the span tree: the host-time profiler.

The cycle profiler (:mod:`repro.profiler.core`) answers "where did the
*simulated* cycles go"; this module answers the ROADMAP's wall-clock
question — "where does the *host* spend its seconds simulating them".
Every span already records exact host-time intervals
(``SpanRecord.dur_wall_ns`` / ``self_wall_ns``), so the frames here are
an exact dual-domain accounting, not a sample:

* **wall frames** — self-vs-child host nanoseconds per unique stack
  path, rendered as a collapsed-stack file (the *wall flamegraph*) next
  to the cycle flamegraph;
* **efficiency frames** — wall-ns spent per simulated cycle, per stack
  path: the ratio that names the pure-Python hot paths (page walks,
  memenc inner loops) worth attacking, because a frame that is cheap in
  cycles but expensive in wall time is simulator overhead, not modeled
  hardware;
* per-subsystem wall shares — the ``throughput`` block in bench
  artifacts is built from these.

Unlike cycle data, wall times are *not* deterministic: they vary with
the host machine and load.  Nothing here feeds the simulated clock — the
profiler stays a pure observer, and the only gated wall metric
(``throughput.sim_cycles_per_wall_second``) uses a direction-aware band
(see :mod:`repro.bench.compare`).

``host_clock_ns()`` is the single sanctioned host-time source for the
bench harness; keeping it here keeps the R001 wall-clock exemption to
one justified module (see ``[tool.repro-lint]`` in pyproject.toml).
"""

from __future__ import annotations

import pathlib
import time

from repro.profiler.core import validate_profile


def host_clock_ns() -> int:
    """The harness host-time source (``time.perf_counter_ns``).

    Only harness-side code (bench runner, exporters) may call this;
    cycle-charged simulation code is kept wall-clock-free by lint rule
    R001.
    """
    return time.perf_counter_ns()


def has_wall_data(document: dict) -> bool:
    """Whether a profile document carries wall-domain frame fields.

    Profiles written before the wall profiler (PR-3 era) validate fine
    but have no ``self_wall_ns``; callers should degrade gracefully.
    """
    for snap in document["machines"]:
        for frame in snap["frames"]:
            if "self_wall_ns" in frame:
                return True
    return False


# -- wall frames -------------------------------------------------------------

def wall_frames(document: dict) -> list[dict]:
    """Combined frames ranked by self wall-time, heaviest first."""
    validate_profile(document)
    frames = [f for f in document["combined"]["frames"]
              if f.get("self_wall_ns", 0) > 0]
    return sorted(frames, key=lambda f: (-f["self_wall_ns"], f["stack"]))


def subsystem_wall_shares(document: dict) -> dict[str, dict]:
    """Self wall-time folded by subsystem (leaf frame's name prefix).

    Returns ``{subsystem: {"self_wall_ns": ns, "share": fraction}}``
    where shares are of total span-attributed wall time, so they sum to
    1.0 (when any wall time was recorded at all).
    """
    totals: dict[str, int] = {}
    for frame in document["combined"]["frames"]:
        ns = frame.get("self_wall_ns", 0)
        if ns <= 0:
            continue
        leaf = frame["stack"][-1]
        subsystem = leaf.partition(".")[0]
        totals[subsystem] = totals.get(subsystem, 0) + ns
    grand = sum(totals.values())
    return {sub: {"self_wall_ns": ns,
                  "share": ns / grand if grand else 0.0}
            for sub, ns in sorted(totals.items())}


def wall_summary(document: dict, n: int = 10) -> dict:
    """The compact wall-domain digest (mirrors ``profile_summary``)."""
    combined = document["combined"]
    top = wall_frames(document)[:n]
    return {
        "total_span_wall_ns": combined.get("total_span_wall_ns", 0),
        "machines": len(document["machines"]),
        "by_subsystem": subsystem_wall_shares(document),
        "top_self_wall": [{"stack": ";".join(f["stack"]),
                           "self_wall_ns": f["self_wall_ns"],
                           "calls": f["calls"]} for f in top],
    }


# -- efficiency frames (wall-ns per simulated cycle) -------------------------

def efficiency_frames(document: dict, *, min_cycles: int = 1
                      ) -> list[dict]:
    """Per-stack simulation efficiency, worst (most wall per cycle) first.

    Each entry pairs a stack's self wall-time with its self cycles and
    their ratio ``wall_ns_per_cycle`` — the cost of simulating one cycle
    of that frame on this host.  Frames below ``min_cycles`` self cycles
    are dropped: their ratios are noise (a 200 ns span over 3 cycles
    says nothing about hot paths).
    """
    validate_profile(document)
    out = []
    for frame in document["combined"]["frames"]:
        self_cycles = frame["self_cycles"]
        self_wall = frame.get("self_wall_ns", 0)
        if self_cycles < min_cycles or self_wall <= 0:
            continue
        out.append({
            "stack": frame["stack"],
            "calls": frame["calls"],
            "self_cycles": self_cycles,
            "self_wall_ns": self_wall,
            "wall_ns_per_cycle": self_wall / self_cycles,
        })
    out.sort(key=lambda f: (-f["wall_ns_per_cycle"], f["stack"]))
    return out


def efficiency_report(document: dict, n: int = 15, *,
                      min_cycles: int = 1000) -> str:
    """Human-readable efficiency table: the wall-per-cycle hot list."""
    frames = efficiency_frames(document, min_cycles=min_cycles)
    combined = document["combined"]
    total_wall = combined.get("total_span_wall_ns", 0)
    total_cycles = combined.get("total_span_cycles", 0) or 1
    out = ["Efficiency: host wall-time per simulated cycle", "=" * 48,
           f"span-attributed wall time: {total_wall / 1e6:,.2f} ms over "
           f"{total_cycles:,} simulated cycles "
           f"({total_wall / total_cycles:,.1f} ns/cycle overall)", ""]
    if not frames:
        out.append("no wall-domain data (profile predates the wall "
                   "profiler; regenerate with `python -m repro.bench run`)")
        return "\n".join(out)
    out.append(f"top {min(n, len(frames))} frames by wall-ns per cycle "
               f"(>= {min_cycles} self cycles):")
    out.append(f"  {'ns/cycle':>10}  {'self wall ms':>12}  "
               f"{'self cycles':>14}  stack")
    for frame in frames[:n]:
        out.append(f"  {frame['wall_ns_per_cycle']:>10,.1f}  "
                   f"{frame['self_wall_ns'] / 1e6:>12,.3f}  "
                   f"{frame['self_cycles']:>14,}  "
                   f"{';'.join(frame['stack'])}")
    return "\n".join(out)


def wall_report(document: dict, n: int = 10) -> str:
    """Human-readable wall-domain digest: shares plus top frames."""
    summary = wall_summary(document, n)
    total = summary["total_span_wall_ns"]
    out = ["Wall time: where the host seconds went", "=" * 40,
           f"span-attributed wall time: {total / 1e6:,.2f} ms across "
           f"{summary['machines']} machine(s)", ""]
    shares = summary["by_subsystem"]
    if not shares:
        out.append("no wall-domain data (profile predates the wall "
                   "profiler; regenerate with `python -m repro.bench run`)")
        return "\n".join(out)
    out.append(f"wall share by subsystem (of {len(shares)}):")
    for sub, entry in sorted(shares.items(),
                             key=lambda kv: -kv[1]["self_wall_ns"]):
        out.append(f"  {sub:<12} {entry['self_wall_ns'] / 1e6:>12,.3f} ms "
                   f"({entry['share']:6.1%})")
    out.append("")
    out.append(f"top {len(summary['top_self_wall'])} frames by self "
               f"wall time:")
    for frame in summary["top_self_wall"]:
        out.append(f"  {frame['self_wall_ns'] / 1e6:>12,.3f} ms  "
                   f"{frame['stack']}  ({frame['calls']} calls)")
    return "\n".join(out)


# -- wall flamegraph (collapsed stacks weighted by self wall-ns) -------------

def wall_collapsed_lines(document: dict, *, prefix_machine: bool = True
                         ) -> list[str]:
    """Collapsed stacks weighted by self wall-ns: the wall flamegraph.

    Loaded next to the cycle-weighted ``.collapsed`` file, the width
    differences between the two flamegraphs *are* the efficiency map —
    a frame wider in wall than in cycles is simulator overhead.
    """
    validate_profile(document)
    lines: list[str] = []
    if prefix_machine:
        for snap in document["machines"]:
            label = snap["label"].replace(";", "_").replace(" ", "_")
            for frame in snap["frames"]:
                if frame.get("self_wall_ns", 0) <= 0:
                    continue
                stack = ";".join([label] + frame["stack"])
                lines.append(f"{stack} {int(frame['self_wall_ns'])}")
    else:
        for frame in document["combined"]["frames"]:
            if frame.get("self_wall_ns", 0) <= 0:
                continue
            lines.append(f"{';'.join(frame['stack'])} "
                         f"{int(frame['self_wall_ns'])}")
    return lines


def write_wall_collapsed(path: str | pathlib.Path, document: dict, *,
                         prefix_machine: bool = True) -> pathlib.Path:
    """Write the wall-weighted collapsed-stack file; returns the path."""
    path = pathlib.Path(path)
    lines = wall_collapsed_lines(document, prefix_machine=prefix_machine)
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path
