"""Profile diffing: where did the cycles move between two runs?

Compares two profile documents frame-by-frame (matching on the exact
stack) and ranks the largest self-cycle deltas — the first thing to look
at when the bench gate reports a regression.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.profiler.core import validate_profile


@dataclass
class FrameDelta:
    """One stack's cycle movement between a base and a current run."""

    stack: tuple[str, ...]
    base_self: int
    cur_self: int
    base_calls: int
    cur_calls: int

    @property
    def delta(self) -> int:
        return self.cur_self - self.base_self

    def as_dict(self) -> dict:
        return {"stack": list(self.stack), "base_self": self.base_self,
                "cur_self": self.cur_self, "delta": self.delta,
                "base_calls": self.base_calls, "cur_calls": self.cur_calls}


def _frame_table(document: dict) -> dict[tuple[str, ...], dict]:
    return {tuple(frame["stack"]): frame
            for frame in document["combined"]["frames"]}


def diff_profiles(base: dict, current: dict) -> list[FrameDelta]:
    """Every stack seen in either profile, sorted by |self-cycle delta|."""
    validate_profile(base)
    validate_profile(current)
    base_frames = _frame_table(base)
    cur_frames = _frame_table(current)
    deltas = []
    for stack in sorted(set(base_frames) | set(cur_frames)):
        b = base_frames.get(stack)
        c = cur_frames.get(stack)
        deltas.append(FrameDelta(
            stack=stack,
            base_self=int(b["self_cycles"]) if b else 0,
            cur_self=int(c["self_cycles"]) if c else 0,
            base_calls=int(b["calls"]) if b else 0,
            cur_calls=int(c["calls"]) if c else 0))
    deltas.sort(key=lambda d: (-abs(d.delta), d.stack))
    return deltas


def diff_report(base: dict, current: dict, n: int = 15) -> str:
    """A human-readable top-N cycle-delta digest."""
    deltas = diff_profiles(base, current)
    base_total = base["combined"]["total_span_cycles"]
    cur_total = current["combined"]["total_span_cycles"]
    out = ["Profile diff: top self-cycle deltas", "=" * 40,
           f"total span cycles: {base_total:,} -> {cur_total:,} "
           f"({cur_total - base_total:+,})", ""]
    moved = [d for d in deltas if d.delta != 0][:n]
    if not moved:
        out.append("no frame moved a single cycle")
    for d in moved:
        out.append(f"  {d.delta:>+14,}  {';'.join(d.stack)}  "
                   f"(self {d.base_self:,} -> {d.cur_self:,}, "
                   f"calls {d.base_calls} -> {d.cur_calls})")
    return "\n".join(out)
