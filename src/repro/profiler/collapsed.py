"""Collapsed-stack output: the format flamegraph tooling eats.

One line per unique stack, semicolon-joined frames, a space, and the
integer self-cycle count::

    table1;sdk.ecall;world.eenter 184320

That is exactly the format of Brendan Gregg's ``flamegraph.pl`` and of
speedscope / inferno / d3-flame-graph importers, so a profile from any
benchmark run loads in standard tooling unchanged.  Counts are *self*
cycles — flamegraph widths then show inclusive cycles per frame, which
is the invariant the exact profiler guarantees.
"""

from __future__ import annotations

import pathlib

from repro.profiler.core import validate_profile


def collapsed_lines(document: dict, *, prefix_machine: bool = True
                    ) -> list[str]:
    """Render a profile document as collapsed-stack lines.

    ``prefix_machine`` roots every stack at the machine label (so a
    multi-machine run shows one tower per machine); turn it off to merge
    identical stacks across machines via the combined section.
    """
    validate_profile(document)
    lines: list[str] = []
    if prefix_machine:
        for snap in document["machines"]:
            label = snap["label"].replace(";", "_").replace(" ", "_")
            for frame in snap["frames"]:
                if frame["self_cycles"] <= 0:
                    continue
                stack = ";".join([label] + frame["stack"])
                lines.append(f"{stack} {int(frame['self_cycles'])}")
    else:
        for frame in document["combined"]["frames"]:
            if frame["self_cycles"] <= 0:
                continue
            lines.append(f"{';'.join(frame['stack'])} "
                         f"{int(frame['self_cycles'])}")
    return lines


def write_collapsed(path: str | pathlib.Path, document: dict, *,
                    prefix_machine: bool = True) -> pathlib.Path:
    """Write the collapsed-stack file; returns the path."""
    path = pathlib.Path(path)
    lines = collapsed_lines(document, prefix_machine=prefix_machine)
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


def parse_collapsed(text: str) -> dict[tuple[str, ...], int]:
    """Parse collapsed-stack text back into ``{stack: count}``.

    The round-trip partner of :func:`collapsed_lines`; tests use it to
    prove the emitted file is well-formed for downstream tooling.
    """
    out: dict[tuple[str, ...], int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        stack_part, _, count_part = line.rpartition(" ")
        if not stack_part or not count_part.isdigit():
            raise ValueError(f"collapsed line {lineno}: {line!r}")
        key = tuple(stack_part.split(";"))
        out[key] = out.get(key, 0) + int(count_part)
    return out
