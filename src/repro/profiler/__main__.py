"""Profiler CLI.

::

    python -m repro.profiler report     PROFILE.json [--top N]
    python -m repro.profiler collapse   PROFILE.json [-o OUT.collapsed]
    python -m repro.profiler diff       BASE.json CURRENT.json [--top N]
    python -m repro.profiler wall       PROFILE.json [--top N] [-o OUT]
    python -m repro.profiler efficiency PROFILE.json [--top N]
                                        [--min-cycles N]

``report``/``collapse``/``diff`` work in the simulated-cycle domain;
``wall`` ranks the same stacks by *host* wall-time (optionally writing
the wall-weighted flamegraph) and ``efficiency`` by wall-ns per
simulated cycle — the table that names the pure-Python hot paths worth
optimizing.  ``PROFILE.json`` files are written by ``python -m
repro.bench run`` (``<name>.profile.json`` in the artifacts directory)
or by :func:`repro.profiler.profile_document` + ``json.dump`` from any
script.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.profiler.collapsed import write_collapsed
from repro.profiler.core import profile_summary, validate_profile
from repro.profiler.diff import diff_report
from repro.profiler.wall import (efficiency_report, has_wall_data,
                                 wall_report, write_wall_collapsed)


def _load(path: str) -> dict:
    document = json.loads(pathlib.Path(path).read_text())
    validate_profile(document)
    return document


def _cmd_report(args) -> int:
    document = _load(args.profile)
    summary = profile_summary(document, args.top)
    print(f"total span cycles: {summary['total_span_cycles']:,} "
          f"across {summary['machines']} machine(s)")
    print(f"top {len(summary['top_self'])} frames by self cycles:")
    for frame in summary["top_self"]:
        print(f"  {frame['self_cycles']:>14,}  {frame['stack']}  "
              f"({frame['calls']} calls)")
    return 0


def _cmd_collapse(args) -> int:
    document = _load(args.profile)
    out = args.output or pathlib.Path(args.profile).with_suffix(".collapsed")
    path = write_collapsed(out, document)
    print(f"collapsed stacks: {path} (load with flamegraph.pl or "
          f"https://www.speedscope.app)")
    return 0


def _cmd_diff(args) -> int:
    base, current = _load(args.base), _load(args.current)
    print(diff_report(base, current, args.top))
    moved = base["combined"]["total_span_cycles"] != \
        current["combined"]["total_span_cycles"]
    return 1 if moved else 0


def _require_wall(document: dict, path: str) -> bool:
    if has_wall_data(document):
        return True
    print(f"error: {path} has no wall-domain data (written before the "
          f"wall profiler); regenerate with `python -m repro.bench run`",
          file=sys.stderr)
    return False


def _cmd_wall(args) -> int:
    document = _load(args.profile)
    if not _require_wall(document, args.profile):
        return 2
    print(wall_report(document, args.top))
    if args.output:
        path = write_wall_collapsed(args.output, document)
        print(f"\nwall flamegraph stacks: {path} (load with flamegraph.pl "
              f"or https://www.speedscope.app)")
    return 0


def _cmd_efficiency(args) -> int:
    document = _load(args.profile)
    if not _require_wall(document, args.profile):
        return 2
    print(efficiency_report(document, args.top,
                            min_cycles=args.min_cycles))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.profiler",
        description="exact cycle-attribution profiles over telemetry spans")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("report", help="print the top-N self-cycle frames")
    p.add_argument("profile")
    p.add_argument("--top", type=int, default=10, metavar="N")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("collapse",
                       help="write flamegraph-ready collapsed stacks")
    p.add_argument("profile")
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(fn=_cmd_collapse)

    p = sub.add_parser("diff",
                       help="top cycle-delta frames between two profiles "
                            "(exit 1 when totals moved)")
    p.add_argument("base")
    p.add_argument("current")
    p.add_argument("--top", type=int, default=15, metavar="N")
    p.set_defaults(fn=_cmd_diff)

    p = sub.add_parser("wall",
                       help="host wall-time shares and top frames "
                            "(the wall-domain report)")
    p.add_argument("profile")
    p.add_argument("--top", type=int, default=10, metavar="N")
    p.add_argument("-o", "--output", default=None, metavar="OUT",
                   help="also write wall-weighted collapsed stacks "
                        "(the wall flamegraph)")
    p.set_defaults(fn=_cmd_wall)

    p = sub.add_parser("efficiency",
                       help="wall-ns per simulated cycle, per stack "
                            "(the simulator hot-path table)")
    p.add_argument("profile")
    p.add_argument("--top", type=int, default=15, metavar="N")
    p.add_argument("--min-cycles", type=int, default=1000, metavar="N",
                   help="ignore frames below N self cycles (ratio noise)")
    p.set_defaults(fn=_cmd_efficiency)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
