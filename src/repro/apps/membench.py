"""Memory-latency kernel (Figure 11 and Appendix A.3).

Measures per-access latency for sequential and random patterns over
buffers from 16 KB to 256 MB, with and without memory encryption, on the
HyperEnclave (AMD SME) and SGX (Intel MEE + EPC paging) memory systems.

To keep the simulation tractable the whole memory hierarchy is *scaled
down by a constant factor* (buffer, LLC, EPC, TLB, metadata caches all
divided by ``SCALE``): every capacity ratio — which is what determines
the shape of the latency curves — is preserved, while line/page
iteration counts shrink by the same factor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.hw import costs
from repro.hw.cache import Llc
from repro.hw.cycles import CycleCounter
from repro.hw.memenc import AmdSme, IntelMee, NoEncryption
from repro.hw.memmodel import EpcModel, MemorySubsystem
from repro.hw.tlb import Tlb
from repro.telemetry import sink as telemetry_sink

SCALE = 8
BUFFER_SIZES = [16 * 1024 * (4 ** i) for i in range(8)]   # 16 KB .. 256 MB
RANDOM_SAMPLES = 20_000


def _make_engine(name: str):
    if name == "none":
        return NoEncryption()
    if name == "amd-sme":
        return AmdSme()
    if name == "intel-mee":
        return IntelMee(cache_lines=costs.MEE_METADATA_CACHE_LINES // SCALE)
    raise ValueError(f"unknown engine {name!r}")


@dataclass(frozen=True)
class LatencyPoint:
    """Average per-8-byte-access latency for one configuration."""

    buffer_size: int
    pattern: str          # "seq" | "random"
    engine: str
    cycles_per_access: float


def measure_latency(engine_name: str, pattern: str, buffer_size: int, *,
                    epc_bytes: int | None = None,
                    seed: int = 99) -> LatencyPoint:
    """Latency of one (engine, pattern, size) point on the scaled hierarchy."""
    scaled = max(buffer_size // SCALE, 4096)
    cycles = CycleCounter()
    # No Machine is involved here, so the telemetry sink would otherwise
    # see zero simulated cycles for this benchmark; register the bare
    # counter so the throughput gate can attribute the sweep's work.
    active_sink = telemetry_sink.current()
    if active_sink is not None:
        active_sink.register_cycles(
            f"membench/{engine_name}/{pattern}/{buffer_size}", cycles)
    mem = MemorySubsystem(
        cycles, _make_engine(engine_name),
        llc=Llc(costs.LLC_SIZE // SCALE),
        tlb=Tlb(max(costs.TLB_ENTRIES // SCALE, 16)),
        epc=EpcModel(epc_bytes // SCALE) if epc_bytes else None)

    if pattern == "seq":
        # Two passes: warm, then measure the steady state.
        mem.touch_sequential(0, scaled)
        with cycles.measure() as span:
            mem.touch_sequential(0, scaled)
        accesses = scaled // 8
    elif pattern == "random":
        rng = random.Random(seed)
        offsets = [rng.randrange(scaled // 8) * 8
                   for _ in range(RANDOM_SAMPLES)]
        # Warm-up: one full sweep (fills what fits in the LLC) plus a
        # random prefix (LRU steady state for larger-than-LLC buffers).
        mem.touch_sequential(0, scaled)
        for offset in offsets[: RANDOM_SAMPLES // 4]:
            mem.touch(offset)
        with cycles.measure() as span:
            for offset in offsets:
                mem.touch(offset)
        accesses = RANDOM_SAMPLES
    else:
        raise ValueError(f"unknown pattern {pattern!r}")

    return LatencyPoint(buffer_size=buffer_size, pattern=pattern,
                        engine=engine_name,
                        cycles_per_access=span.elapsed / accesses)


def latency_curve(engine_name: str, pattern: str, *,
                  epc_bytes: int | None = None,
                  sizes: list[int] | None = None) -> list[LatencyPoint]:
    """The Figure 11 series for one configuration."""
    return [measure_latency(engine_name, pattern, size, epc_bytes=epc_bytes)
            for size in (sizes or BUFFER_SIZES)]


def normalized_overhead(points: list[LatencyPoint]) -> list[float]:
    """Each point's latency normalized to the smallest-buffer latency."""
    baseline = points[0].cycles_per_access
    return [p.cycles_per_access / baseline for p in points]
