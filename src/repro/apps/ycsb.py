"""YCSB workload generation (Cooper et al., SoCC'10).

Workload A (50% reads / 50% updates, zipfian request distribution) drives
the SQLite and Redis evaluations (Sec 7.4).  The zipfian generator is the
standard Gray et al. rejection-free construction YCSB itself uses.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator


class ZipfianGenerator:
    """Zipfian-distributed integers in [0, n) with exponent ``theta``."""

    def __init__(self, n: int, theta: float = 0.99, seed: int = 42) -> None:
        if n <= 0:
            raise ValueError("need a positive universe")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self._rng = random.Random(seed)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = ((1 - (2.0 / n) ** (1 - theta))
                     / (1 - self._zeta2 / self._zetan))

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        value = int(self.n * (self._eta * u - self._eta + 1) ** self._alpha)
        return min(value, self.n - 1)


@dataclass(frozen=True)
class Operation:
    """One YCSB operation."""

    kind: str          # "read" | "update" | "insert" | "scan"
    key: bytes
    value: bytes | None = None


def record_key(index: int) -> bytes:
    """YCSB-style key for record ``index``."""
    return b"user%012d" % index


def workload_a(n_records: int, n_ops: int, *, value_size: int = 1024,
               theta: float = 0.99, seed: int = 42) -> Iterator[Operation]:
    """Workload A: 50% reads, 50% updates, zipfian over loaded records."""
    zipf = ZipfianGenerator(n_records, theta=theta, seed=seed)
    rng = random.Random(seed ^ 0x5A5A)
    for _ in range(n_ops):
        key = record_key(zipf.next())
        if rng.random() < 0.5:
            yield Operation("read", key)
        else:
            yield Operation("update", key,
                            bytes([rng.randrange(256)]) * value_size)


def load_phase(n_records: int, *, value_size: int = 1024,
               seed: int = 7) -> Iterator[Operation]:
    """The initial dataset load."""
    rng = random.Random(seed)
    for i in range(n_records):
        yield Operation("insert", record_key(i),
                        bytes([rng.randrange(256)]) * value_size)


# The core YCSB workload mixes (Cooper et al., Table 1 of the YCSB paper).
# Each maps an operation kind to its probability; "scan" operations use
# SCAN_LENGTH records, workload D draws keys from the most recent inserts.
WORKLOAD_MIXES = {
    "A": {"read": 0.5, "update": 0.5},
    "B": {"read": 0.95, "update": 0.05},
    "C": {"read": 1.0},
    "D": {"read": 0.95, "insert": 0.05},
    "E": {"scan": 0.95, "insert": 0.05},
    "F": {"read": 0.5, "rmw": 0.5},
}
SCAN_LENGTH = 20


def workload(letter: str, n_records: int, n_ops: int, *,
             value_size: int = 1024, theta: float = 0.99,
             seed: int = 42) -> Iterator[Operation]:
    """Any of the six core YCSB workloads.

    ``rmw`` (workload F) is emitted as a read followed by an update of
    the same key, like the YCSB client performs it.
    """
    mix = WORKLOAD_MIXES.get(letter.upper())
    if mix is None:
        raise ValueError(f"unknown YCSB workload {letter!r}")
    zipf = ZipfianGenerator(n_records, theta=theta, seed=seed)
    rng = random.Random(seed ^ 0x5A5A)
    next_insert = n_records
    emitted = 0
    while emitted < n_ops:
        roll = rng.random()
        cumulative = 0.0
        kind = "read"
        for candidate, probability in mix.items():
            cumulative += probability
            if roll < cumulative:
                kind = candidate
                break
        if kind == "insert":
            yield Operation("insert", record_key(next_insert),
                            bytes([rng.randrange(256)]) * value_size)
            next_insert += 1
            emitted += 1
            continue
        if letter.upper() == "D":
            # Workload D reads "the latest" records.
            key = record_key(max(0, next_insert - 1 - zipf.next()))
        else:
            key = record_key(zipf.next())
        if kind == "rmw":
            yield Operation("read", key)
            yield Operation("update", key,
                            bytes([rng.randrange(256)]) * value_size)
            emitted += 2
            continue
        if kind == "update":
            yield Operation("update", key,
                            bytes([rng.randrange(256)]) * value_size)
        elif kind == "scan":
            yield Operation("scan", key)
        else:
            yield Operation("read", key)
        emitted += 1
