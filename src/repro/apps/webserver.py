"""An HTTP/1.0-with-keepalive file server (the Lighttpd stand-in, Fig 8c).

The server is plain Python against the :class:`~repro.libos.base.Libos`
interface, so the same code runs inside an enclave (OcclumLibos: FS
in-enclave, sockets as OCALLs) and natively (NativeLibos: syscalls).
``make_http_enclave_image`` wraps it into an SDK enclave image.
"""

from __future__ import annotations

from repro.libos.base import LIBOS_EDL_UNTRUSTED, Libos

_PARSE_CYCLES_PER_BYTE = 0.6
_RESPONSE_BUILD_CYCLES = 450

HTTP_PORT = 80


class HttpServer:
    """A single-threaded document server."""

    def __init__(self, libos: Libos, compute, port: int = HTTP_PORT) -> None:
        self.libos = libos
        self.compute = compute            # cycle-charging callable
        self.port = port
        self.libos.listen(port)
        self.requests_served = 0
        self.errors = 0

    def load_document(self, path: str, content: bytes) -> None:
        self.libos.write_file(path, content)

    def accept(self) -> int:
        return self.libos.accept(self.port)

    def handle_request(self, conn: int) -> int:
        """Serve one request on an established connection.

        Returns the response size, or 0 when the connection is idle.
        """
        request = self.libos.recv(conn)
        if request is None:
            return 0
        self.compute(len(request) * _PARSE_CYCLES_PER_BYTE)
        method, path, ok = self._parse(request)
        if not ok or method != b"GET":
            self.errors += 1
            response = _response(400, b"bad request")
        elif not self.libos.exists(path.decode("latin-1")):
            self.errors += 1
            response = _response(404, b"not found")
        else:
            body = self.libos.read_file(path.decode("latin-1"))
            self.compute(_RESPONSE_BUILD_CYCLES)
            response = _response(200, body)
        self.libos.send(conn, response)
        self.requests_served += 1
        return len(response)

    @staticmethod
    def _parse(request: bytes) -> tuple[bytes, bytes, bool]:
        try:
            line = request.split(b"\r\n", 1)[0]
            method, path, version = line.split(b" ")
        except ValueError:
            return b"", b"", False
        if not version.startswith(b"HTTP/"):
            return b"", b"", False
        return method, path, True


def _response(status: int, body: bytes) -> bytes:
    reason = {200: b"OK", 400: b"Bad Request", 404: b"Not Found"}[status]
    return (b"HTTP/1.0 %d %s\r\nContent-Length: %d\r\n"
            b"Connection: keep-alive\r\n\r\n" % (status, reason, len(body))
            + body)


def http_request(path: str) -> bytes:
    """Build a client GET request."""
    return (b"GET " + path.encode() + b" HTTP/1.0\r\n"
            b"Host: localhost\r\nUser-Agent: ab/2.4\r\n\r\n")


def parse_response(response: bytes) -> tuple[int, bytes]:
    """Returns (status, body)."""
    head, _, body = response.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body


# ---------------------------------------------------------------- enclave --

HTTP_EDL = """
enclave {
    trusted {
        public uint64 http_init(uint64 port);
        public uint64 http_load([in, size=plen] bytes path, uint64 plen,
                                [in, size=n] bytes doc, uint64 n);
        public uint64 http_accept(uint64 port);
        public uint64 http_serve(uint64 conn);
    };
    untrusted {
""" + LIBOS_EDL_UNTRUSTED + """
    };
};
"""


def t_http_init(ctx, port):
    """ECALL: construct the in-enclave server under the LibOS."""
    from repro.libos.occlum import OcclumLibos
    libos = OcclumLibos(ctx)
    ctx.globals["http"] = HttpServer(libos, ctx.compute, int(port))
    return 0


def t_http_load(ctx, path, plen, doc, n):
    """ECALL: store one document in the in-enclave filesystem."""
    server: HttpServer = ctx.globals["http"]
    server.load_document(path.decode("latin-1"), doc)
    return 0


def t_http_accept(ctx, port):
    """ECALL: accept one client connection."""
    server: HttpServer = ctx.globals["http"]
    return server.accept()


def t_http_serve(ctx, conn):
    """ECALL: serve one pending request."""
    server: HttpServer = ctx.globals["http"]
    return server.handle_request(int(conn))


def make_http_enclave_image(mode, *, heap_size: int = 64 * 1024 * 1024,
                            msbuf_size: int = 1024 * 1024):
    """An enclave image running the HTTP server under the LibOS."""
    from repro.monitor.structs import EnclaveConfig
    from repro.sdk.image import EnclaveImage
    return EnclaveImage.build(
        "lighttpd-occlum", HTTP_EDL,
        {"http_init": t_http_init, "http_load": t_http_load,
         "http_accept": t_http_accept, "http_serve": t_http_serve},
        EnclaveConfig(mode=mode, heap_size=heap_size,
                      marshalling_buffer_size=msbuf_size))
