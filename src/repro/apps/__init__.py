"""Application workloads used by the evaluation (Sec 7).

* :mod:`repro.apps.nbench`    — the NBench kernel suite (CPU-intensive).
* :mod:`repro.apps.litedb`    — a B-tree in-memory database (our SQLite).
* :mod:`repro.apps.ycsb`      — the YCSB workload generator (zipfian,
  workload A = 50% reads / 50% updates).
* :mod:`repro.apps.webserver` — an HTTP/1.0 file server (our Lighttpd).
* :mod:`repro.apps.kvserver`  — a RESP key-value server (our Redis).
* :mod:`repro.apps.lmbench`   — LMBench-style OS micro-operations.
* :mod:`repro.apps.speccpu`   — SPEC-CPU-like compute kernels.
* :mod:`repro.apps.membench`  — the memory-latency kernel of Figure 11.
* :mod:`repro.apps.driver`    — request drivers + AEX accounting.

Workload code only uses the context surface shared by
:class:`~repro.sdk.trts.EnclaveContext` and
:class:`~repro.platform.NativeContext` (malloc/touch/compute/random), so
the same code runs protected and unprotected.
"""
