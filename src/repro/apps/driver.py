"""Benchmark drivers: request loops, AEX accounting, queueing model.

NIC interrupts arrive while servers run; when the server is an enclave
each arrival forces an asynchronous enclave exit whose round-trip cost
depends on the operation mode (AEX + OS interrupt handling + ERESUME).
This is the mechanism behind the GU-vs-HU-vs-SGX spread on the
I/O-intensive workloads (Sec 7.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw import costs
from repro.hw.machine import Machine

# The primary OS's interrupt-handling work per arrival.
OS_INTERRUPT_CYCLES = 2000


def aex_roundtrip_cycles(mode_key: str) -> int:
    """The cost of one interrupt-induced AEX + ERESUME for ``mode_key``."""
    return (sum(c for _, c in costs.AEX_STEPS[mode_key])
            + OS_INTERRUPT_CYCLES
            + sum(c for _, c in costs.ERESUME_STEPS[mode_key]))


def charge_interrupts(machine: Machine, busy_cycles: float,
                      mode_key: str | None) -> int:
    """Account for interrupts arriving during ``busy_cycles`` of service.

    ``mode_key`` is the enclave operation mode ("gu"/"hu"/"p"/"sgx") or
    None for native execution (plain interrupt handling, no AEX).
    Returns the number of arrivals.
    """
    arrivals = machine.interrupts.arrivals_during(busy_cycles)
    for _ in range(arrivals):
        if mode_key is None:
            machine.cycles.charge(OS_INTERRUPT_CYCLES, "interrupt")
        else:
            machine.cycles.charge(aex_roundtrip_cycles(mode_key),
                                  f"aex-interrupt:{mode_key}")
    return arrivals


@dataclass
class ServiceStats:
    """Aggregated request-service measurements."""

    requests: int = 0
    total_cycles: float = 0.0
    aex_count: int = 0
    per_request: list[float] = field(default_factory=list)

    @property
    def mean_cycles(self) -> float:
        return self.total_cycles / self.requests if self.requests else 0.0

    def record(self, cycles: float) -> None:
        self.requests += 1
        self.total_cycles += cycles
        self.per_request.append(cycles)


def measure_requests(machine: Machine, serve_one, n_requests: int, *,
                     mode_key: str | None, warmup: int = 3) -> ServiceStats:
    """Drive ``serve_one()`` ``n_requests`` times, measuring cycles per
    request including interrupt-induced AEXes."""
    for _ in range(warmup):
        serve_one()
    stats = ServiceStats()
    for _ in range(n_requests):
        with machine.cycles.measure() as span:
            serve_one()
            stats.aex_count += charge_interrupts(machine, span.elapsed,
                                                 mode_key)
        stats.record(span.elapsed)
    return stats


def mm1_latency(service_cycles: float, utilization: float) -> float:
    """M/M/1 sojourn time for a given service time and utilization."""
    if not 0 <= utilization < 1:
        raise ValueError("utilization must be in [0, 1)")
    return service_cycles / (1.0 - utilization)


def latency_throughput_curve(service_cycles: float, *,
                             points: int = 12,
                             max_utilization: float = 0.95
                             ) -> list[tuple[float, float]]:
    """(throughput ops/Mcycle, latency cycles) pairs for a rising load."""
    curve = []
    for i in range(1, points + 1):
        rho = max_utilization * i / points
        throughput = rho / service_cycles * 1e6
        curve.append((throughput, mm1_latency(service_cycles, rho)))
    return curve
