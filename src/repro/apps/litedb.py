"""litedb: an in-memory B-tree key-value database (the SQLite stand-in).

The Figure 8b evaluation runs an in-memory SQLite under YCSB workload A
with the client embedded in the enclave.  litedb reproduces the relevant
structure: a real order-``ORDER`` B-tree whose nodes and values live at
allocated enclave addresses, so every get/put exerts genuine pressure on
the TLB/LLC/encryption/EPC models as the database grows past the cache
and (on SGX) past the EPC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

ORDER = 64                      # max keys per node
NODE_BYTES = 2048               # key area + child/value pointers
_WORD = 8


@dataclass
class _Node:
    addr: int
    leaf: bool
    keys: list[bytes] = field(default_factory=list)
    children: list["_Node"] = field(default_factory=list)   # internal
    values: list[int] = field(default_factory=list)          # leaf: value addrs


class LiteDb:
    """A B-tree database bound to an execution context."""

    def __init__(self, ctx, *, value_size: int = 1024) -> None:
        self.ctx = ctx
        self.value_size = value_size
        self.root = self._new_node(leaf=True)
        self.count = 0
        self._store: dict[int, bytes] = {}   # value addr -> actual bytes
        self.reads = 0
        self.updates = 0

    # -- node helpers -----------------------------------------------------------

    def _new_node(self, *, leaf: bool) -> _Node:
        addr = self.ctx.malloc(NODE_BYTES)
        return _Node(addr=addr, leaf=leaf)

    def _touch_node(self, node: _Node, *, write: bool = False) -> None:
        # A search touches the key area; a split/insert dirties it.
        self.ctx.touch(node.addr, min(len(node.keys) + 1, ORDER) * 16,
                       write=write)

    def _find_slot(self, node: _Node, key: bytes) -> int:
        # Binary search within the node.
        lo, hi = 0, len(node.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            self.ctx.compute(6)
            if node.keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    @property
    def memory_bytes(self) -> int:
        """Approximate database footprint (drives EPC pressure)."""
        return self.count * (self.value_size + 64)

    # -- public API ----------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or update."""
        if len(value) != self.value_size:
            raise ValueError(f"values must be {self.value_size} bytes")
        root = self.root
        if len(root.keys) >= ORDER:
            new_root = self._new_node(leaf=False)
            new_root.children = [root]
            self._split_child(new_root, 0)
            self.root = new_root
        self._insert_nonfull(self.root, key, value)

    def get(self, key: bytes) -> bytes | None:
        """Point lookup."""
        self.reads += 1
        node = self.root
        while True:
            self._touch_node(node)
            slot = self._find_slot(node, key)
            if node.leaf:
                if slot < len(node.keys) and node.keys[slot] == key:
                    addr = node.values[slot]
                    self.ctx.touch(addr, self.value_size)
                    return self._store[addr]
                return None
            if slot < len(node.keys) and node.keys[slot] == key:
                slot += 1
            node = node.children[slot]

    def update(self, key: bytes, value: bytes) -> bool:
        """Overwrite an existing value in place (YCSB 'update')."""
        self.updates += 1
        node = self.root
        while True:
            self._touch_node(node)
            slot = self._find_slot(node, key)
            if node.leaf:
                if slot < len(node.keys) and node.keys[slot] == key:
                    addr = node.values[slot]
                    self.ctx.touch(addr, self.value_size, write=True)
                    self._store[addr] = bytes(value)
                    return True
                return False
            if slot < len(node.keys) and node.keys[slot] == key:
                slot += 1
            node = node.children[slot]

    def scan(self, start_key: bytes, limit: int) -> list[bytes]:
        """Range scan (YCSB workload E style)."""
        out: list[bytes] = []
        self._scan_into(self.root, start_key, limit, out)
        return out

    def _scan_into(self, node: _Node, start_key: bytes, limit: int,
                   out: list[bytes]) -> None:
        self._touch_node(node)
        if node.leaf:
            slot = self._find_slot(node, start_key)
            for i in range(slot, len(node.keys)):
                if len(out) >= limit:
                    return
                addr = node.values[i]
                self.ctx.touch(addr, self.value_size)
                out.append(self._store[addr])
            return
        slot = self._find_slot(node, start_key)
        for child in node.children[slot:]:
            if len(out) >= limit:
                return
            self._scan_into(child, start_key, limit, out)

    # -- insertion machinery ----------------------------------------------------------

    def _insert_nonfull(self, node: _Node, key: bytes, value: bytes) -> None:
        self._touch_node(node, write=True)
        slot = self._find_slot(node, key)
        if node.leaf:
            if slot < len(node.keys) and node.keys[slot] == key:
                addr = node.values[slot]
                self.ctx.touch(addr, self.value_size, write=True)
                self._store[addr] = bytes(value)
                return
            addr = self.ctx.malloc(self.value_size)
            self.ctx.touch(addr, self.value_size, write=True)
            self._store[addr] = bytes(value)
            node.keys.insert(slot, key)
            node.values.insert(slot, addr)
            self.count += 1
            self.ctx.compute(len(node.keys) - slot)   # shift cost
            return
        if slot < len(node.keys) and node.keys[slot] == key:
            slot += 1
        child = node.children[slot]
        if len(child.keys) >= ORDER:
            self._split_child(node, slot)
            if key > node.keys[slot]:
                slot += 1
        self._insert_nonfull(node.children[slot], key, value)

    def _split_child(self, parent: _Node, index: int) -> None:
        child = parent.children[index]
        mid = len(child.keys) // 2
        sibling = self._new_node(leaf=child.leaf)
        mid_key = child.keys[mid]
        if child.leaf:
            sibling.keys = child.keys[mid:]
            sibling.values = child.values[mid:]
            child.keys = child.keys[:mid]
            child.values = child.values[:mid]
        else:
            sibling.keys = child.keys[mid + 1:]
            sibling.children = child.children[mid + 1:]
            child.keys = child.keys[:mid]
            child.children = child.children[:mid + 1]
        parent.keys.insert(index, mid_key)
        parent.children.insert(index + 1, sibling)
        self._touch_node(child, write=True)
        self._touch_node(sibling, write=True)
        self._touch_node(parent, write=True)
        self.ctx.compute(ORDER * 4)

    # -- introspection (tests) -----------------------------------------------------------

    def depth(self) -> int:
        node, d = self.root, 1
        while not node.leaf:
            node = node.children[0]
            d += 1
        return d

    def check_invariants(self) -> None:
        """Every node's keys sorted; leaf depth uniform; order respected."""
        depths: set[int] = set()

        def walk(node: _Node, d: int, lo: bytes | None, hi: bytes | None):
            assert node.keys == sorted(node.keys), "unsorted node"
            assert len(node.keys) <= ORDER, "overfull node"
            for k in node.keys:
                if lo is not None:
                    assert k >= lo
                if hi is not None:
                    assert k < hi or node.leaf and k <= hi
            if node.leaf:
                assert len(node.values) == len(node.keys)
                depths.add(d)
                return
            assert len(node.children) == len(node.keys) + 1
            bounds = [None] + node.keys + [None]
            for i, child in enumerate(node.children):
                walk(child, d + 1, bounds[i], bounds[i + 1])

        walk(self.root, 1, None, None)
        assert len(depths) == 1, "leaves at unequal depth"
