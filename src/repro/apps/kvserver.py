"""A RESP key-value server (the Redis stand-in, Fig 8d).

Implements a real subset of the RESP2 wire protocol (GET/SET/DEL/INCR/
PING) over the LibOS socket interface, with values stored at allocated
context addresses so the memory system sees the 50 MB dataset.
"""

from __future__ import annotations

from repro.libos.base import LIBOS_EDL_UNTRUSTED, Libos

_PARSE_CYCLES_PER_BYTE = 0.5
_HASH_LOOKUP_CYCLES = 180

KV_PORT = 6379


def encode_command(*parts: bytes) -> bytes:
    """RESP array-of-bulk-strings encoding (what redis clients send)."""
    out = b"*%d\r\n" % len(parts)
    for part in parts:
        out += b"$%d\r\n%s\r\n" % (len(part), part)
    return out


def decode_reply(data: bytes):
    """Decode one RESP reply (simple string, error, integer, bulk)."""
    kind = data[:1]
    if kind == b"+":
        return data[1:].split(b"\r\n", 1)[0]
    if kind == b"-":
        raise ValueError(data[1:].split(b"\r\n", 1)[0].decode())
    if kind == b":":
        return int(data[1:].split(b"\r\n", 1)[0])
    if kind == b"$":
        header, _, rest = data.partition(b"\r\n")
        length = int(header[1:])
        if length == -1:
            return None
        return rest[:length]
    raise ValueError(f"bad RESP reply {data[:20]!r}")


class _Entry:
    __slots__ = ("addr", "size")

    def __init__(self, addr: int, size: int) -> None:
        self.addr = addr
        self.size = size


class RespServer:
    """A single-threaded RESP server."""

    def __init__(self, libos: Libos, ctx, port: int = KV_PORT) -> None:
        self.libos = libos
        self.ctx = ctx
        self.port = port
        self.libos.listen(port)
        self._entries: dict[bytes, _Entry] = {}
        self._values: dict[bytes, bytes] = {}
        self.commands_served = 0

    def accept(self) -> int:
        return self.libos.accept(self.port)

    @property
    def memory_bytes(self) -> int:
        return sum(e.size + 64 for e in self._entries.values())

    def handle_command(self, conn: int) -> int:
        """Process one queued command; returns the reply size (0 if idle)."""
        data = self.libos.recv(conn)
        if data is None:
            return 0
        self.ctx.compute(len(data) * _PARSE_CYCLES_PER_BYTE)
        try:
            parts = self._parse_command(data)
            reply = self._execute(parts)
        except (ValueError, IndexError) as exc:
            reply = b"-ERR %s\r\n" % str(exc).encode()[:64]
        self.libos.send(conn, reply)
        self.commands_served += 1
        return len(reply)

    @staticmethod
    def _parse_command(data: bytes) -> list[bytes]:
        # Length-prefixed parsing: bulk strings may contain \r\n bytes,
        # so splitting on line terminators would corrupt binary values.
        if not data.startswith(b"*"):
            raise ValueError("expected RESP array")
        pos = data.index(b"\r\n")
        count = int(data[1:pos])
        if count < 1:
            raise ValueError("empty command array")
        pos += 2
        parts: list[bytes] = []
        for _ in range(count):
            if data[pos:pos + 1] != b"$":
                raise ValueError("expected bulk string")
            header_end = data.index(b"\r\n", pos)
            length = int(data[pos + 1:header_end])
            if length < 0:
                raise ValueError("negative bulk length")
            start = header_end + 2
            part = data[start:start + length]
            if len(part) != length or \
                    data[start + length:start + length + 2] != b"\r\n":
                raise ValueError("truncated bulk string")
            parts.append(part)
            pos = start + length + 2
        return parts

    def _execute(self, parts: list[bytes]) -> bytes:
        command = parts[0].upper()
        self.ctx.compute(_HASH_LOOKUP_CYCLES)
        if command == b"PING":
            return b"+PONG\r\n"
        if command == b"SET":
            key, value = parts[1], parts[2]
            entry = self._entries.get(key)
            if entry is None or entry.size < len(value):
                entry = _Entry(self.ctx.malloc(max(len(value), 16)),
                               len(value))
                self._entries[key] = entry
            entry.size = len(value)
            self.ctx.touch(entry.addr, len(value), write=True)
            self._values[key] = bytes(value)
            return b"+OK\r\n"
        if command == b"GET":
            entry = self._entries.get(parts[1])
            if entry is None:
                return b"$-1\r\n"
            self.ctx.touch(entry.addr, entry.size)
            value = self._values[parts[1]]
            return b"$%d\r\n%s\r\n" % (len(value), value)
        if command == b"DEL":
            removed = 0
            for key in parts[1:]:
                if self._entries.pop(key, None) is not None:
                    self._values.pop(key, None)
                    removed += 1
            return b":%d\r\n" % removed
        if command == b"INCR":
            key = parts[1]
            entry = self._entries.get(key)
            current = int(self._values.get(key, b"0"))
            value = str(current + 1).encode()
            if entry is None:
                entry = _Entry(self.ctx.malloc(32), len(value))
                self._entries[key] = entry
            self.ctx.touch(entry.addr, len(value), write=True)
            self._values[key] = value
            return b":%d\r\n" % (current + 1)
        raise ValueError(f"unknown command {command.decode()!r}")


# ---------------------------------------------------------------- enclave --

KV_EDL = """
enclave {
    trusted {
        public uint64 kv_init(uint64 port);
        public uint64 kv_accept(uint64 port);
        public uint64 kv_serve(uint64 conn);
    };
    untrusted {
""" + LIBOS_EDL_UNTRUSTED + """
    };
};
"""


def t_kv_init(ctx, port):
    """ECALL: construct the in-enclave server under the LibOS."""
    from repro.libos.occlum import OcclumLibos
    libos = OcclumLibos(ctx)
    ctx.globals["kv"] = RespServer(libos, ctx, int(port))
    return 0


def t_kv_accept(ctx, port):
    """ECALL: accept one client connection."""
    return ctx.globals["kv"].accept()


def t_kv_serve(ctx, conn):
    """ECALL: handle one queued RESP command."""
    return ctx.globals["kv"].handle_command(int(conn))


def make_kv_enclave_image(mode, *, heap_size: int = 256 * 1024 * 1024,
                          msbuf_size: int = 1024 * 1024):
    """An enclave image running the RESP server under the LibOS."""
    from repro.monitor.structs import EnclaveConfig
    from repro.sdk.image import EnclaveImage
    return EnclaveImage.build(
        "redis-occlum", KV_EDL,
        {"kv_init": t_kv_init, "kv_accept": t_kv_accept,
         "kv_serve": t_kv_serve},
        EnclaveConfig(mode=mode, heap_size=heap_size,
                      marshalling_buffer_size=msbuf_size))
