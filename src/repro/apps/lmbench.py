"""LMBench-style OS micro-operations (Table 3 / Appendix A.2).

Measures the primary OS's primitive costs natively and inside the normal
VM, in cycles, converted to microseconds at the evaluation clock.  The
virtualization overhead comes from NPT fills on fresh guest mappings —
kept tiny by huge NPT pages, hence the paper's <1% result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.hw.machine import Machine
from repro.hw.phys import PAGE_SIZE
from repro.osim.kernel import Kernel
from repro.osim.net import Loopback

CPU_GHZ = 2.2      # EPYC 7601 base clock


def cycles_to_us(cycles: float) -> float:
    """Convert simulated cycles to microseconds at the box's clock."""
    return cycles / (CPU_GHZ * 1000.0)


@dataclass(frozen=True)
class MicroResult:
    """One micro-op measurement."""

    name: str
    cycles: float

    @property
    def microseconds(self) -> float:
        return cycles_to_us(self.cycles)


def _measure(machine: Machine, op: Callable[[], None],
             iterations: int) -> float:
    with machine.cycles.measure() as span:
        for _ in range(iterations):
            op()
    return span.elapsed / iterations


def null_call(machine: Machine, kernel: Kernel,
              iterations: int = 50) -> MicroResult:
    """getpid(): pure syscall round trip."""
    return MicroResult("null_call", _measure(
        machine, lambda: kernel.charge_syscall(40), iterations))


def fork_proc(machine: Machine, kernel: Kernel,
              iterations: int = 10) -> MicroResult:
    """fork+exit: process creation with a copied address space."""
    def op():
        child = kernel.spawn()
        kernel.mmap(child, 32 * PAGE_SIZE, populate=True)
        kernel.charge_syscall(4000)          # COW setup, fd table, etc.
        kernel.exit(child)

    return MicroResult("fork", _measure(machine, op, iterations))


def context_switch(machine: Machine, kernel: Kernel,
                   iterations: int = 50) -> MicroResult:
    """Round-robin switches among a pool of processes."""
    pool = [kernel.spawn() for _ in range(4)]
    result = MicroResult("ctxsw", _measure(
        machine, lambda: kernel.schedule(), iterations))
    for p in pool:
        kernel.exit(p)
    return result


def mmap_op(machine: Machine, kernel: Kernel,
            iterations: int = 5, pages: int = 512) -> MicroResult:
    """mmap+touch+munmap of a multi-megabyte region."""
    process = kernel.spawn()

    def op():
        vma = kernel.mmap(process, pages * PAGE_SIZE, populate=True)
        kernel.munmap(process, vma)

    result = MicroResult("mmap", _measure(machine, op, iterations))
    kernel.exit(process)
    return result


def page_fault(machine: Machine, kernel: Kernel,
               iterations: int = 50) -> MicroResult:
    """Minor fault on an untouched anonymous page."""
    process = kernel.spawn()
    vma = kernel.mmap(process, (iterations + 4) * PAGE_SIZE, populate=False)
    pages = iter(range(iterations + 4))

    def op():
        kernel.handle_user_fault(process, vma.start + next(pages) * PAGE_SIZE)

    result = MicroResult("page_fault", _measure(machine, op, iterations))
    kernel.exit(process)
    return result


def af_unix(machine: Machine, kernel: Kernel,
            iterations: int = 30) -> MicroResult:
    """One token bounced over a local socket pair."""
    loopback = Loopback(machine)
    loopback.listen(1)
    conn = loopback.connect(1)
    loopback.accept(1)

    def op():
        kernel.charge_syscall(0)
        loopback.send(conn, b"x", from_client=True)
        kernel.charge_syscall(0)
        loopback.recv(conn, from_client=True)

    return MicroResult("af_unix", _measure(machine, op, iterations))


ALL_OPS = {
    "null_call": null_call,
    "fork": fork_proc,
    "ctxsw": context_switch,
    "mmap": mmap_op,
    "page_fault": page_fault,
    "af_unix": af_unix,
}


def run_suite(machine: Machine, kernel: Kernel) -> dict[str, MicroResult]:
    """Run every micro-op once; returns name -> result."""
    return {name: op(machine, kernel) for name, op in ALL_OPS.items()}
