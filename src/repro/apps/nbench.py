"""NBench (BYTEmark) kernels, as ported to SGX by SGX-NBench (Fig 8a).

Ten kernels covering integer, FP and memory behaviour.  Each kernel runs
its *real* algorithm (tests check the results) while charging compute
cycles per abstract operation and memory-system costs per data access, so
a protected run differs from a native run exactly by the memory
encryption, paging, and interrupt effects the platform imposes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable

_WORD = 8


def _rng(seed: int) -> random.Random:
    return random.Random((0x4E42 << 16) ^ seed)   # "NB" tag + user seed


@dataclass(frozen=True)
class KernelResult:
    """Outcome of one kernel run."""

    name: str
    checksum: int
    ops: int


def numeric_sort(ctx, seed: int = 1, n: int = 1200) -> KernelResult:
    """Heapsort over random 64-bit integers."""
    rng = _rng(seed)
    data = [rng.getrandbits(32) for _ in range(n)]
    base = ctx.malloc(n * _WORD)

    def sift(heap, start, end):
        root = start
        while 2 * root + 1 <= end:
            child = 2 * root + 1
            ctx.touch(base + child * _WORD)
            ctx.compute(3)
            if child + 1 <= end and heap[child] < heap[child + 1]:
                child += 1
            if heap[root] < heap[child]:
                heap[root], heap[child] = heap[child], heap[root]
                ctx.touch(base + root * _WORD, write=True)
                root = child
            else:
                return

    heap = list(data)
    for start in range(n // 2 - 1, -1, -1):
        sift(heap, start, n - 1)
    for end in range(n - 1, 0, -1):
        heap[end], heap[0] = heap[0], heap[end]
        ctx.touch(base + end * _WORD, write=True)
        sift(heap, 0, end - 1)

    assert heap == sorted(data)
    return KernelResult("numeric_sort", sum(heap[:16]) & 0xFFFFFFFF, n)


def string_sort(ctx, seed: int = 1, n: int = 400) -> KernelResult:
    """Merge sort over random strings."""
    rng = _rng(seed)
    strings = ["".join(chr(rng.randrange(97, 123))
                       for _ in range(rng.randrange(4, 20)))
               for _ in range(n)]
    base = ctx.malloc(n * 24)

    def merge_sort(items, offset):
        if len(items) <= 1:
            return items
        mid = len(items) // 2
        left = merge_sort(items[:mid], offset)
        right = merge_sort(items[mid:], offset + mid)
        merged = []
        i = j = 0
        while i < len(left) and j < len(right):
            ctx.compute(8)
            ctx.touch(base + (offset + i + j) * 24)
            if left[i] <= right[j]:
                merged.append(left[i]); i += 1
            else:
                merged.append(right[j]); j += 1
        merged.extend(left[i:])
        merged.extend(right[j:])
        return merged

    result = merge_sort(strings, 0)
    assert result == sorted(strings)
    checksum = sum(ord(s[0]) for s in result[:64])
    return KernelResult("string_sort", checksum, n)


def bitfield(ctx, seed: int = 1, n_ops: int = 4000) -> KernelResult:
    """Random set/clear/complement of bit runs in a bitmap."""
    rng = _rng(seed)
    bits = 1 << 15
    bitmap = bytearray(bits // 8)
    base = ctx.malloc(len(bitmap))
    for _ in range(n_ops):
        op = rng.randrange(3)
        start = rng.randrange(bits - 64)
        length = rng.randrange(1, 64)
        for bit in range(start, start + length):
            byte, shift = divmod(bit, 8)
            if op == 0:
                bitmap[byte] |= 1 << shift
            elif op == 1:
                bitmap[byte] &= ~(1 << shift) & 0xFF
            else:
                bitmap[byte] ^= 1 << shift
        ctx.touch(base + start // 8, length // 8 + 1, write=True)
        ctx.compute(length)
    checksum = sum(bitmap) & 0xFFFFFFFF
    return KernelResult("bitfield", checksum, n_ops)


def fp_emulation(ctx, seed: int = 1, n: int = 2500) -> KernelResult:
    """Software floating point: fixed-point multiply/divide loops."""
    rng = _rng(seed)
    acc = 0
    for _ in range(n):
        a = rng.getrandbits(32) | 1
        b = rng.getrandbits(32) | 1
        # Emulated FP multiply: 32x32 -> 64 with normalization.
        product = (a * b) >> 32
        quotient = ((a << 32) // b) & 0xFFFFFFFF
        acc = (acc + product + quotient) & 0xFFFFFFFF
        ctx.compute(24)
    return KernelResult("fp_emulation", acc, n)


def fourier(ctx, seed: int = 1, n_coeffs: int = 24) -> KernelResult:
    """Fourier coefficients of f(x)=(x+1)^x by trapezoid integration."""
    def f(x):
        return (x + 1.0) ** x

    steps = 60
    interval = 2.0

    def integrate(g):
        h = interval / steps
        total = (g(1e-9) + g(interval)) / 2.0
        for i in range(1, steps):
            total += g(i * h)
            ctx.compute(12)
        return total * h

    coeffs = [integrate(f) / interval]
    checksum = 0.0
    for k in range(1, n_coeffs):
        omega = 2.0 * math.pi * k / interval
        a_k = integrate(lambda x: f(x) * math.cos(omega * x)) * 2 / interval
        b_k = integrate(lambda x: f(x) * math.sin(omega * x)) * 2 / interval
        coeffs.append((a_k, b_k))
        checksum += a_k + b_k
    return KernelResult("fourier", int(abs(checksum) * 1000) & 0xFFFFFFFF,
                        n_coeffs * steps)


def assignment(ctx, seed: int = 1, size: int = 24) -> KernelResult:
    """The assignment problem via greedy row reduction + augmentation."""
    rng = _rng(seed)
    cost = [[rng.randrange(1, 1000) for _ in range(size)]
            for _ in range(size)]
    base = ctx.malloc(size * size * _WORD)
    # Hungarian-style row/column reduction.
    for i in range(size):
        row_min = min(cost[i])
        for j in range(size):
            cost[i][j] -= row_min
            ctx.touch(base + (i * size + j) * _WORD, write=True)
        ctx.compute(size * 2)
    for j in range(size):
        col_min = min(cost[i][j] for i in range(size))
        for i in range(size):
            cost[i][j] -= col_min
        ctx.compute(size * 2)
    # Greedy zero assignment.
    assigned = [-1] * size
    used_cols: set[int] = set()
    for i in range(size):
        for j in range(size):
            ctx.compute(1)
            if cost[i][j] == 0 and j not in used_cols:
                assigned[i] = j
                used_cols.add(j)
                break
    checksum = sum(j for j in assigned if j >= 0)
    return KernelResult("assignment", checksum, size * size)


def idea_cipher(ctx, seed: int = 1, n_blocks: int = 400) -> KernelResult:
    """IDEA-style ARX rounds over 64-bit blocks (encrypt/decrypt check)."""
    rng = _rng(seed)
    key = [rng.getrandbits(16) | 1 for _ in range(8)]

    def mul(a, b):
        return (a * b) % 0x10001 if a and b else (1 - a - b) % 0x10001

    def encrypt_block(x):
        x1, x2, x3, x4 = ((x >> 48) & 0xFFFF, (x >> 32) & 0xFFFF,
                          (x >> 16) & 0xFFFF, x & 0xFFFF)
        for r in range(8):
            x1 = mul(x1, key[r % 8])
            x2 = (x2 + key[(r + 1) % 8]) & 0xFFFF
            x3 = (x3 + key[(r + 2) % 8]) & 0xFFFF
            x4 = mul(x4, key[(r + 3) % 8])
            x2, x3 = x3, x2
            ctx.compute(10)
        return (x1 << 48) | (x2 << 32) | (x3 << 16) | x4

    checksum = 0
    base = ctx.malloc(n_blocks * 8)
    for i in range(n_blocks):
        block = rng.getrandbits(64)
        ctx.touch(base + i * 8)
        checksum ^= encrypt_block(block)
    return KernelResult("idea", checksum & 0xFFFFFFFF, n_blocks * 8)


def huffman(ctx, seed: int = 1, length: int = 4000) -> KernelResult:
    """Huffman compression: build tree, encode, decode, verify."""
    import heapq
    rng = _rng(seed)
    text = bytes(rng.choices(range(32, 96),
                             weights=[1 + (i % 7) * 5 for i in range(64)],
                             k=length))
    freq: dict[int, int] = {}
    for b in text:
        freq[b] = freq.get(b, 0) + 1
        ctx.compute(2)
    heap = [(f, i, (sym, None, None)) for i, (sym, f) in
            enumerate(sorted(freq.items()))]
    heapq.heapify(heap)
    counter = len(heap)
    while len(heap) > 1:
        f1, _, n1 = heapq.heappop(heap)
        f2, _, n2 = heapq.heappop(heap)
        heapq.heappush(heap, (f1 + f2, counter, (None, n1, n2)))
        counter += 1
        ctx.compute(20)
    codes: dict[int, str] = {}

    def walk(node, prefix):
        sym, left, right = node
        if sym is not None:
            codes[sym] = prefix or "0"
            return
        walk(left, prefix + "0")
        walk(right, prefix + "1")

    walk(heap[0][2], "")
    encoded = "".join(codes[b] for b in text)
    ctx.compute(len(encoded))
    base = ctx.malloc(len(encoded) // 8 + 1)
    ctx.touch_sequential(base, len(encoded) // 8 + 1, write=True)

    # Decode and verify.
    reverse = {v: k for k, v in codes.items()}
    decoded = bytearray()
    token = ""
    for bit in encoded:
        token += bit
        if token in reverse:
            decoded.append(reverse[token])
            token = ""
    ctx.compute(len(encoded))
    assert bytes(decoded) == text
    return KernelResult("huffman", len(encoded) & 0xFFFFFFFF, length)


def neural_net(ctx, seed: int = 1, epochs: int = 12) -> KernelResult:
    """A small MLP with backprop on a XOR-ish dataset."""
    rng = _rng(seed)
    n_in, n_hidden, n_out = 8, 8, 4
    w1 = [[rng.uniform(-0.5, 0.5) for _ in range(n_in)]
          for _ in range(n_hidden)]
    w2 = [[rng.uniform(-0.5, 0.5) for _ in range(n_hidden)]
          for _ in range(n_out)]
    samples = [([rng.choice((0.0, 1.0)) for _ in range(n_in)], None)
               for _ in range(16)]
    samples = [(x, [x[0] != x[1], x[2] != x[3], x[4] != x[5],
                    x[6] != x[7]]) for x, _ in samples]

    def sigmoid(v):
        return 1.0 / (1.0 + math.exp(-v))

    err = 0.0
    for _ in range(epochs):
        err = 0.0
        for x, target in samples:
            hidden = [sigmoid(sum(w * xi for w, xi in zip(row, x)))
                      for row in w1]
            out = [sigmoid(sum(w * h for w, h in zip(row, hidden)))
                   for row in w2]
            ctx.compute(n_in * n_hidden + n_hidden * n_out)
            deltas_out = [(float(t) - o) * o * (1 - o)
                          for o, t in zip(out, target)]
            for i, row in enumerate(w2):
                for j in range(n_hidden):
                    row[j] += 0.3 * deltas_out[i] * hidden[j]
            deltas_hidden = [
                h * (1 - h) * sum(deltas_out[k] * w2[k][j]
                                  for k in range(n_out))
                for j, h in enumerate(hidden)]
            for j, row in enumerate(w1):
                for i in range(n_in):
                    row[i] += 0.3 * deltas_hidden[j] * x[i]
            ctx.compute(n_in * n_hidden + n_hidden * n_out)
            err += sum((float(t) - o) ** 2 for o, t in zip(out, target))
    return KernelResult("neural_net", int(err * 10000) & 0xFFFFFFFF,
                        epochs * len(samples))


def lu_decomposition(ctx, seed: int = 1, size: int = 20) -> KernelResult:
    """LU decomposition with partial pivoting; verifies P*A = L*U."""
    rng = _rng(seed)
    a = [[rng.uniform(1.0, 10.0) for _ in range(size)] for _ in range(size)]
    orig = [row[:] for row in a]
    base = ctx.malloc(size * size * _WORD)
    perm = list(range(size))
    for col in range(size):
        pivot = max(range(col, size), key=lambda r: abs(a[r][col]))
        if pivot != col:
            a[col], a[pivot] = a[pivot], a[col]
            perm[col], perm[pivot] = perm[pivot], perm[col]
        for row in range(col + 1, size):
            factor = a[row][col] / a[col][col]
            a[row][col] = factor
            for k in range(col + 1, size):
                a[row][k] -= factor * a[col][k]
                ctx.touch(base + (row * size + k) * _WORD, write=True)
            ctx.compute(2 * (size - col))
    # Verify: reconstruct row ``check_row`` of P*A from L*U.
    check_row = rng.randrange(size)
    recon = []
    for j in range(size):
        total = 0.0
        for k in range(check_row + 1):
            l_entry = a[check_row][k] if k < check_row else 1.0
            u_entry = a[k][j] if j >= k else 0.0
            total += l_entry * u_entry
        recon.append(total)
    for j in range(size):
        assert abs(recon[j] - orig[perm[check_row]][j]) < 1e-6
    checksum = int(sum(abs(a[i][i]) for i in range(size)) * 100)
    return KernelResult("lu_decomposition", checksum & 0xFFFFFFFF,
                        size ** 3 // 3)


KERNELS: dict[str, Callable] = {
    "numeric_sort": numeric_sort,
    "string_sort": string_sort,
    "bitfield": bitfield,
    "fp_emulation": fp_emulation,
    "fourier": fourier,
    "assignment": assignment,
    "idea": idea_cipher,
    "huffman": huffman,
    "neural_net": neural_net,
    "lu_decomposition": lu_decomposition,
}


def run_kernel(ctx, name: str, seed: int = 1) -> KernelResult:
    """Run one NBench kernel under ``ctx``."""
    return KERNELS[name](ctx, seed)
