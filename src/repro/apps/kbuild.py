"""A Linux-kernel-build-like workload (Table 3's third column).

Compiling a kernel is fork/exec of many short-lived compiler processes,
each doing CPU-bound parsing plus file I/O.  The simulation builds a
synthetic source tree, then "compiles" each unit: spawn a process, mmap
its working memory, charge parse/codegen compute proportional to the
unit's size, write the object file, and exit.  Run natively and in the
normal VM, the delta is pure virtualization overhead (NPT fills on every
fresh address space — the worst case for a hypervisor, which is why the
paper includes it).
"""

from __future__ import annotations

import random

from repro.hw.machine import Machine
from repro.hw.phys import PAGE_SIZE
from repro.osim.kernel import Kernel
from repro.osim.vfs import Vfs

_PARSE_CYCLES_PER_BYTE = 2.1
_CODEGEN_CYCLES_PER_BYTE = 3.4
_LINK_CYCLES_PER_OBJECT = 40_000


def make_source_tree(vfs: Vfs, n_units: int = 40, seed: int = 3) -> list[str]:
    """Write a synthetic source tree; returns the unit paths."""
    rng = random.Random(seed)
    paths = []
    for i in range(n_units):
        path = f"/src/unit_{i:03d}.c"
        size = rng.randrange(2_000, 20_000)
        vfs.write_file(path, bytes(rng.randrange(32, 127)
                                   for _ in range(128)) * (size // 128))
        paths.append(path)
    return paths


def compile_unit(machine: Machine, kernel: Kernel, vfs: Vfs,
                 path: str) -> str:
    """One compiler invocation: fork, parse, codegen, write the object."""
    process = kernel.spawn()
    kernel.mmap(process, 64 * PAGE_SIZE, populate=True)   # cc1 heap
    source = vfs.read_file(path)
    machine.cycles.charge(len(source) * _PARSE_CYCLES_PER_BYTE, "parse")
    machine.cycles.charge(len(source) * _CODEGEN_CYCLES_PER_BYTE,
                          "codegen")
    object_path = path.replace(".c", ".o")
    vfs.write_file(object_path, source[: len(source) // 3])
    kernel.exit(process)
    return object_path


def link(machine: Machine, vfs: Vfs, objects: list[str]) -> int:
    """The final link: read every object, charge per-object work."""
    total = 0
    for path in objects:
        total += len(vfs.read_file(path))
        machine.cycles.charge(_LINK_CYCLES_PER_OBJECT, "link")
    vfs.write_file("/vmlinuz", b"\x7fELF" + total.to_bytes(8, "little"))
    return total


def build(machine: Machine, kernel: Kernel, *, n_units: int = 40) -> float:
    """Full build; returns the cycles spent."""
    vfs = Vfs(machine.cycles.charge)
    units = make_source_tree(vfs, n_units)
    with machine.cycles.measure() as span:
        objects = [compile_unit(machine, kernel, vfs, path)
                   for path in units]
        link(machine, vfs, objects)
    return span.elapsed
