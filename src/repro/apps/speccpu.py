"""SPEC CPU 2017 INTSpeed-like kernels (Figure 10).

Ten small kernels named after the INTSpeed suite, each a real (reduced)
algorithm in the spirit of its namesake.  They run under a context
(native or normal-VM) and the Figure 10 driver compares the two — the
virtualization overhead comes from timer-tick VM exits and NPT fills.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.apps.nbench import KernelResult


def _rng(seed: int) -> random.Random:
    return random.Random(0x53504543 ^ seed)


def perlbench(ctx, seed: int = 1) -> KernelResult:
    """Regex-ish string scanning and substitution."""
    rng = _rng(seed)
    text = "".join(rng.choice("abcdefgh ") for _ in range(8000))
    pattern = "abc"
    hits = 0
    for i in range(len(text) - len(pattern)):
        ctx.compute(2)
        if text[i:i + 3] == pattern:
            hits += 1
    return KernelResult("600.perlbench_s", hits, len(text))


def gcc(ctx, seed: int = 1) -> KernelResult:
    """Expression-tree construction and constant folding."""
    rng = _rng(seed)

    def build(depth):
        ctx.compute(4)
        if depth == 0:
            return rng.randrange(100)
        op = rng.choice("+-*")
        return (op, build(depth - 1), build(depth - 1))

    def fold(node):
        if isinstance(node, int):
            return node
        op, lhs, rhs = node
        lhs, rhs = fold(lhs), fold(rhs)
        ctx.compute(3)
        if op == "+":
            return (lhs + rhs) & 0xFFFFFFFF
        if op == "-":
            return (lhs - rhs) & 0xFFFFFFFF
        return (lhs * rhs) & 0xFFFFFFFF

    total = sum(fold(build(10)) for _ in range(4)) & 0xFFFFFFFF
    return KernelResult("602.gcc_s", total, 4 << 10)


def mcf(ctx, seed: int = 1) -> KernelResult:
    """Shortest paths (Bellman-Ford-ish relaxation) on a random graph."""
    rng = _rng(seed)
    n = 120
    edges = [(rng.randrange(n), rng.randrange(n), rng.randrange(1, 50))
             for _ in range(n * 6)]
    dist = [10 ** 9] * n
    dist[0] = 0
    base = ctx.malloc(n * 8)
    for _ in range(24):
        changed = False
        for u, v, w in edges:
            ctx.compute(3)
            ctx.touch(base + v * 8)
            if dist[u] + w < dist[v]:
                dist[v] = dist[u] + w
                changed = True
        if not changed:
            break
    reachable = sum(1 for d in dist if d < 10 ** 9)
    return KernelResult("605.mcf_s", reachable, len(edges) * 24)


def omnetpp(ctx, seed: int = 1) -> KernelResult:
    """Discrete-event simulation over a priority queue."""
    import heapq
    rng = _rng(seed)
    queue = [(rng.random() * 100, i) for i in range(64)]
    heapq.heapify(queue)
    fired = 0
    now = 0.0
    while queue and fired < 3000:
        now, node = heapq.heappop(queue)
        fired += 1
        ctx.compute(12)
        if rng.random() < 0.7:
            heapq.heappush(queue, (now + rng.random() * 10, node))
    return KernelResult("620.omnetpp_s", fired, fired)


def xalancbmk(ctx, seed: int = 1) -> KernelResult:
    """Tree transformation (XSLT-ish): rewrite a nested structure."""
    rng = _rng(seed)

    def build(depth):
        if depth == 0:
            return rng.randrange(10)
        return [build(depth - 1) for _ in range(3)]

    def transform(node):
        ctx.compute(5)
        if isinstance(node, int):
            return node * 2 + 1
        return [transform(child) for child in reversed(node)]

    tree = build(7)
    out = transform(tree)

    def total(node):
        return node if isinstance(node, int) else sum(map(total, node))

    return KernelResult("623.xalancbmk_s", total(out) & 0xFFFFFFFF, 3 ** 7)


def x264(ctx, seed: int = 1) -> KernelResult:
    """Motion estimation: SAD search over small frames."""
    rng = _rng(seed)
    width = 64
    frame_a = [rng.randrange(256) for _ in range(width * width)]
    frame_b = [min(255, p + rng.randrange(8)) for p in frame_a]
    base = ctx.malloc(width * width * 2)
    best = 0
    for bx in range(0, width - 8, 8):
        best_sad = 10 ** 9
        for dx in range(-4, 5, 2):
            sad = 0
            for i in range(8):
                a = frame_a[bx + i]
                b = frame_b[max(0, min(width * width - 1, bx + i + dx))]
                sad += abs(a - b)
            ctx.compute(24)
            ctx.touch(base + bx * 2, 16)
            if sad < best_sad:
                best_sad = sad
        best += best_sad
    return KernelResult("625.x264_s", best & 0xFFFFFFFF, width * 5)


def deepsjeng(ctx, seed: int = 1) -> KernelResult:
    """Alpha-beta minimax over a random game tree."""
    rng = _rng(seed)

    def search(depth, alpha, beta):
        ctx.compute(6)
        if depth == 0:
            return rng.randrange(-100, 101)
        best = -10 ** 9
        for _ in range(4):
            score = -search(depth - 1, -beta, -alpha)
            best = max(best, score)
            alpha = max(alpha, score)
            if alpha >= beta:
                break
        return best

    value = search(6, -10 ** 9, 10 ** 9)
    return KernelResult("631.deepsjeng_s", value & 0xFFFFFFFF, 4 ** 6)


def leela(ctx, seed: int = 1) -> KernelResult:
    """Monte-Carlo playouts with win-count statistics."""
    rng = _rng(seed)
    wins = 0
    playouts = 600
    for _ in range(playouts):
        score = 0
        for _ in range(30):
            score += rng.choice((-1, 1))
            ctx.compute(4)
        wins += score > 0
    return KernelResult("641.leela_s", wins, playouts * 30)


def exchange2(ctx, seed: int = 1) -> KernelResult:
    """Backtracking fill of a constraint grid (sudoku-like)."""
    rng = _rng(seed)
    size = 6
    grid = [[0] * size for _ in range(size)]
    attempts = [0]

    def ok(r, c, v):
        ctx.compute(size * 2)
        return all(grid[r][j] != v for j in range(size)) and \
            all(grid[i][c] != v for i in range(size))

    def solve(cell):
        if cell == size * size:
            return True
        r, c = divmod(cell, size)
        values = list(range(1, size + 1))
        rng.shuffle(values)
        for v in values:
            attempts[0] += 1
            if ok(r, c, v):
                grid[r][c] = v
                if solve(cell + 1):
                    return True
                grid[r][c] = 0
        return False

    solved = solve(0)
    return KernelResult("648.exchange2_s", int(solved), attempts[0])


def xz(ctx, seed: int = 1) -> KernelResult:
    """LZ77-style compression with a greedy match finder."""
    rng = _rng(seed)
    data = bytes(rng.choice(b"aabbbcabc") for _ in range(6000))
    out_tokens = 0
    i = 0
    base = ctx.malloc(len(data))
    while i < len(data):
        best_len = 0
        start = max(0, i - 255)
        for j in range(start, i):
            length = 0
            while (i + length < len(data) and length < 255
                   and data[j + length] == data[i + length]
                   and j + length < i):
                length += 1
            if length > best_len:
                best_len = length
        ctx.compute(min(i - start, 255) + 4)
        ctx.touch(base + i, max(best_len, 1))
        out_tokens += 1
        i += max(best_len, 1)
    return KernelResult("657.xz_s", out_tokens, len(data))


KERNELS: dict[str, Callable] = {
    "600.perlbench_s": perlbench,
    "602.gcc_s": gcc,
    "605.mcf_s": mcf,
    "620.omnetpp_s": omnetpp,
    "623.xalancbmk_s": xalancbmk,
    "625.x264_s": x264,
    "631.deepsjeng_s": deepsjeng,
    "641.leela_s": leela,
    "648.exchange2_s": exchange2,
    "657.xz_s": xz,
}
