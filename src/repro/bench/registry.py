"""The benchmark registry: one spec per paper table/figure/ablation.

Each ``benchmarks/bench_*.py`` module exposes a module-level
``run_experiment()``; a :class:`BenchSpec` names it, classifies it
(``exact`` cost-model calibrations get a zero tolerance band, ``shape``
figures and ``ablation`` extensions a small relative one) and knows how
to turn the raw experiment output into the JSON-ready *figures* dict
recorded in ``BENCH_<name>.json`` — the same shape the pytest wrappers
append to ``benchmarks/results.json``.

The *gate set* (Table 1, Table 2, Fig 7, Fig 11) is what
``python -m repro.bench run|check`` operates on by default and what CI's
``bench-gate`` job regresses every push against.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable

FigureFn = Callable[[object, object], dict]


def _identity(module, raw) -> dict:
    return raw


def _fig8b_figures(module, raw) -> dict:
    return {"records": module.RECORD_COUNTS, **raw}


def _fig8c_figures(module, raw) -> dict:
    return {"page_sizes": module.PAGE_SIZES, **raw}


def _fig8d_figures(module, raw) -> dict:
    service, _curves = raw
    max_throughput = {name: 1e6 / s for name, s in service.items()}
    rel = {name: max_throughput[name] / max_throughput["baseline"]
           for name in service}
    return {"service_cycles": service, "relative_max_throughput": rel}


def _fig11_figures(module, raw) -> dict:
    from repro.apps.membench import normalized_overhead
    return {
        "buffer_sizes": module.BUFFER_SIZES,
        "normalized": {name: normalized_overhead(points)
                       for name, points in raw.items()},
        "raw_cycles_per_access": {
            name: [p.cycles_per_access for p in points]
            for name, points in raw.items()},
    }


def _smp_gc_figures(module, raw) -> dict:
    return {"cpus": module.CPU_COUNTS, **raw}


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark."""

    name: str                  # results.json / BENCH_<name>.json key
    title: str
    kind: str                  # "exact" | "shape" | "ablation"
    gate: bool = False         # in the default run/check set
    # Per-metric tolerance band for the regression gate: relative for
    # values away from zero, absolute below ``abs_floor``.
    tolerance: float = 0.01
    abs_floor: float = 1e-9
    # Direction-aware band for throughput.* metrics: the gate fails only
    # when sim_cycles_per_wall_second drops below (1 - band) x baseline,
    # never on speedups.  Wall time is host-dependent, so this band is
    # deliberately wide — it must absorb a committed baseline recorded
    # on a faster machine than a noisy CI runner (docs/OBSERVABILITY.md
    # explains the choice); it is independent of ``tolerance``, so the
    # exact tables keep their zero cycle band.  Tightened 0.75 -> 0.6
    # with the fast-path baselines: the committed floors now encode the
    # memoized/batched hot loops, and a band any wider would let the
    # fast path silently regress most of the way back to the legacy
    # reference implementation without tripping the gate.
    throughput_tolerance: float = 0.6
    figures: FigureFn = field(default=_identity)

    @property
    def module_name(self) -> str:
        return f"benchmarks.bench_{self.name}"

    def load(self):
        """Import the benchmark module (repo root must be on sys.path)."""
        return importlib.import_module(self.module_name)

    def run(self) -> dict:
        """Run the experiment and shape its output into figure values."""
        module = self.load()
        return self.figures(module, module.run_experiment())


_SPECS = [
    BenchSpec("table1_edge_calls",
              "Table 1: latency of SGX primitives", "exact",
              gate=True, tolerance=0.0),
    BenchSpec("table2_exceptions",
              "Table 2: in-enclave #UD/#PF handling", "exact",
              gate=True, tolerance=0.0),
    BenchSpec("fig7_marshalling",
              "Figure 7: marshalling-buffer overhead", "shape",
              gate=True),
    BenchSpec("fig11_memenc",
              "Figure 11: memory-encryption overhead", "shape",
              gate=True, figures=_fig11_figures),
    BenchSpec("fig8a_nbench", "Figure 8a: NBench scores", "shape"),
    BenchSpec("fig8b_sqlite", "Figure 8b: SQLite/YCSB throughput",
              "shape", figures=_fig8b_figures),
    BenchSpec("fig8c_lighttpd", "Figure 8c: Lighttpd throughput",
              "shape", figures=_fig8c_figures),
    BenchSpec("fig8d_redis", "Figure 8d: Redis latency/throughput",
              "shape", figures=_fig8d_figures),
    BenchSpec("tab3_fig10_virtualization",
              "Table 3 + Figure 10: virtualization overhead", "shape"),
    BenchSpec("ablation_switchless", "Ablation: switchless calls",
              "ablation"),
    BenchSpec("ablation_edmm", "Ablation: EDMM vs SGX2", "ablation"),
    BenchSpec("ablation_modes", "Ablation: mode crossover", "ablation"),
    BenchSpec("ablation_epc", "Ablation: EPC capacity", "ablation"),
    BenchSpec("ablation_ycsb_mix", "Ablation: YCSB mixes A-F",
              "ablation"),
    BenchSpec("ablation_swap", "Ablation: page swapping", "ablation"),
    BenchSpec("ablation_smp_gc", "Ablation: SMP GC shootdowns",
              "ablation", figures=_smp_gc_figures),
    BenchSpec("epc_pressure",
              "Timeline: two tenants contending for a tiny EPC pool",
              "ablation"),
]

REGISTRY: dict[str, BenchSpec] = {spec.name: spec for spec in _SPECS}


def gate_specs() -> list[BenchSpec]:
    """The default run/check set: the committed-baseline benchmarks."""
    return [spec for spec in _SPECS if spec.gate]


def resolve(names: list[str] | None, *, all_benches: bool = False
            ) -> list[BenchSpec]:
    """Names -> specs; no names means the gate set (or --all)."""
    if all_benches:
        return list(_SPECS)
    if not names:
        return gate_specs()
    specs = []
    for name in names:
        # Accept both "table1_edge_calls" and "bench_table1_edge_calls".
        key = name.removeprefix("bench_")
        if key not in REGISTRY:
            known = ", ".join(sorted(REGISTRY))
            raise KeyError(f"unknown benchmark {name!r}; known: {known}")
        specs.append(REGISTRY[key])
    return specs
