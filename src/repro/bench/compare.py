"""The regression gate: compare a run against a committed baseline.

Every metric in the baseline must exist in the current run and agree
within the benchmark's tolerance band (relative for values away from
zero, absolute near it); metrics that appear or disappear are failures
too — a figure that changed shape needs its baseline regenerated, not
silently ignored.  Exact benchmarks (Table 1/2) run with a zero band, so
a single cycle of drift trips the gate.

Two refinements for host-time observability:

* ``throughput.*`` metrics are *direction-aware*: wall-clock speed is
  host-dependent and only a *slowdown* beyond the (wide) throughput band
  is a regression — a speedup of any size passes.  The exact cycle
  tables keep their zero band untouched, because throughput carries its
  own tolerance, recorded in the baseline's ``throughput`` block.
* Version-1 baselines (no ``throughput``/``latency`` blocks) are
  accepted with a warning note, not failed: the new metric families are
  simply skipped until the baseline is regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Band for throughput.* metrics when the baseline predates per-spec
# bands; matches BenchSpec.throughput_tolerance's default.  Tightened
# from 0.75 after the fast-path work: the regenerated baselines encode
# the ≥5x speedup, and 0.6 keeps the floor well above the legacy path
# so a silent fast-path regression trips the gate.
DEFAULT_THROUGHPUT_TOLERANCE = 0.6


@dataclass
class MetricDelta:
    """One compared metric."""

    metric: str
    baseline: float | None      # None: metric only in the current run
    current: float | None       # None: metric missing from current run
    tolerance: float
    # "both": any drift beyond the band fails.  "higher_is_better":
    # only current < baseline - band fails (throughput metrics — a
    # speedup is never a regression).
    direction: str = "both"

    @property
    def status(self) -> str:
        if self.baseline is None:
            return "new"
        if self.current is None:
            return "missing"
        if self.direction == "higher_is_better":
            if self.current >= self.baseline - self.band:
                return "ok"
            return "regressed"
        if abs(self.current - self.baseline) <= self.band:
            return "ok"
        return "regressed"

    @property
    def band(self) -> float:
        base = abs(self.baseline) if self.baseline is not None else 0.0
        return max(self.tolerance * base, 1e-9)

    @property
    def rel_change(self) -> float | None:
        if self.baseline in (None, 0.0) or self.current is None:
            return None
        return self.current / self.baseline - 1.0


@dataclass
class FingerprintDelta:
    """One compared state fingerprint: exact string equality, no band.

    A machine's ``state_hash()`` either reproduces bit-identically or
    the run is nondeterministic — there is no "close enough" for a
    determinism gate.
    """

    metric: str
    baseline: str | None
    current: str | None
    tolerance: float = 0.0

    @property
    def status(self) -> str:
        if self.baseline is None:
            return "new"
        if self.current is None:
            return "missing"
        if self.baseline == self.current:
            return "ok"
        return "regressed"

    @property
    def rel_change(self) -> None:
        return None


@dataclass
class CompareResult:
    """The gate verdict for one benchmark."""

    name: str
    tolerance: float
    deltas: list[MetricDelta] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def failures(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.status != "ok"]

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict:
        return {
            "name": self.name, "ok": self.ok,
            "tolerance": self.tolerance, "notes": self.notes,
            "checked": len(self.deltas),
            "failures": [{
                "metric": d.metric, "status": d.status,
                "baseline": d.baseline, "current": d.current,
                "rel_change": d.rel_change,
            } for d in self.failures],
        }


def compare_artifacts(baseline: dict, current: dict,
                      tolerance: float | None = None) -> CompareResult:
    """Gate one current artifact against its committed baseline."""
    name = baseline.get("name", "?")
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", 0.01))
    result = CompareResult(name=name, tolerance=tolerance)

    base_fp = baseline.get("provenance", {}).get("costs_fingerprint")
    cur_fp = current.get("provenance", {}).get("costs_fingerprint")
    if base_fp and cur_fp and base_fp != cur_fp:
        result.notes.append(
            f"cost model changed since the baseline was recorded "
            f"({base_fp} -> {cur_fp}); if intentional, regenerate with "
            f"`python -m repro.bench run {name}`")

    base_metrics: dict = baseline["metrics"]
    cur_metrics: dict = current["metrics"]

    # Version-1 baselines predate the derived throughput/latency metric
    # families: skip those families with a warning instead of failing
    # every current-run metric as "new".  Only metrics *absent from the
    # baseline* are skipped, so a figure that happens to share the
    # prefix (e.g. a figure dict literally named "latency") still gates
    # normally.
    from repro.bench.artifact import artifact_version
    base_version = artifact_version(baseline)
    skip_prefixes: list[str] = []
    if base_version < 2:
        for block, prefix in (("throughput", "throughput."),
                              ("latency", "latency.")):
            if baseline.get(block) is None and \
                    any(m.startswith(prefix) and m not in base_metrics
                        for m in cur_metrics):
                skip_prefixes.append(prefix)
                result.notes.append(
                    f"baseline (artifact_version {base_version}) has no "
                    f"{block} block; skipping {prefix}* metrics — "
                    f"regenerate with `python -m repro.bench run {name}` "
                    f"to gate them")

    throughput_tolerance = (baseline.get("throughput") or {}).get(
        "tolerance", DEFAULT_THROUGHPUT_TOLERANCE)

    # Wall-clock throughput is only comparable when both runs used the
    # same fast-path mode (REPRO_FASTPATH): the legacy reference path is
    # several times slower by design, not by regression.  Simulated
    # metrics still gate exactly — they are fastpath-invariant.
    base_mode = baseline.get("provenance", {}).get("fastpath")
    cur_mode = current.get("provenance", {}).get("fastpath")
    skip_throughput_family = False
    if base_mode is not None and cur_mode is not None \
            and base_mode != cur_mode:
        skip_throughput_family = True
        result.notes.append(
            f"fastpath mode differs (baseline {base_mode!r}, current "
            f"{cur_mode!r}); skipping throughput.* metrics — wall-clock "
            f"speed is only gated within one mode")

    for metric in sorted(set(base_metrics) | set(cur_metrics)):
        if metric not in base_metrics and \
                any(metric.startswith(prefix) for prefix in skip_prefixes):
            continue
        if skip_throughput_family and metric.startswith("throughput."):
            continue
        if metric == "throughput.sim_cycles_per_wall_second":
            result.deltas.append(MetricDelta(
                metric=metric,
                baseline=base_metrics.get(metric),
                current=cur_metrics.get(metric),
                tolerance=throughput_tolerance,
                direction="higher_is_better"))
            continue
        result.deltas.append(MetricDelta(
            metric=metric,
            baseline=base_metrics.get(metric),
            current=cur_metrics.get(metric),
            tolerance=tolerance))

    # State fingerprints gate on exact equality (determinism check).
    # Baselines that predate the fingerprints field skip the check —
    # regenerating them opts in.
    base_fps: dict = baseline.get("fingerprints") or {}
    cur_fps: dict = current.get("fingerprints") or {}
    if base_fps:
        for label in sorted(set(base_fps) | set(cur_fps)):
            result.deltas.append(FingerprintDelta(
                metric=f"state_hash.{label}",
                baseline=base_fps.get(label),
                current=cur_fps.get(label)))
    return result


def _fmt(value: float | str | None) -> str:
    if value is None:
        return "-"
    if isinstance(value, str):                 # state-hash fingerprints
        return value[:16] + "…" if len(value) > 16 else value
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:.6g}"


def compare_report(results: list[CompareResult], *,
                   verbose: bool = False) -> str:
    """Plain-text gate report over every compared benchmark."""
    out = []
    for result in results:
        verdict = "ok" if result.ok else "REGRESSED"
        out.append(f"[{verdict}] {result.name}: "
                   f"{len(result.deltas)} metric(s) checked, "
                   f"{len(result.failures)} outside the "
                   f"{result.tolerance:.1%} band")
        for note in result.notes:
            out.append(f"  note: {note}")
        shown = result.failures if not verbose else result.deltas
        for d in shown:
            rel = d.rel_change
            rel_text = f" ({rel:+.2%})" if rel is not None else ""
            out.append(f"  {d.status:<9} {d.metric}: "
                       f"{_fmt(d.baseline)} -> {_fmt(d.current)}{rel_text}")
    failed = [r.name for r in results if not r.ok]
    out.append("")
    if failed:
        out.append(f"GATE FAILED: {', '.join(failed)}")
    else:
        out.append(f"gate passed: {len(results)} benchmark(s) within "
                   f"tolerance")
    return "\n".join(out)
