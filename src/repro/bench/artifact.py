"""``BENCH_<name>.json`` artifacts: the machine-readable result record.

One artifact per benchmark run, containing

* ``figures`` — the JSON-ready figure values (same shape the pytest
  wrappers record into ``benchmarks/results.json``),
* ``metrics`` — every numeric leaf of ``figures`` flattened to a
  dot-path, plus the telemetry digest (``telemetry.total_cycles``,
  ``telemetry.by_subsystem.*``) and ``profile.total_span_cycles`` — the
  exact set the regression gate compares with tolerance bands,
* ``telemetry`` / ``profile`` — the cycle digest and top-frame summary,
* ``provenance`` — cost-model fingerprint, python version, git commit.

Everything in ``metrics`` is a deterministic function of the simulation
(repro-lint R001 bans wall clocks and unseeded randomness there), so a
committed baseline reproduces bit-identically until someone changes the
cost model — which is exactly what the gate is for.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import subprocess

# Version 2 added the explicit ``artifact_version`` forward-compat
# field, the ``throughput`` block (host wall-clock speed, gated with a
# direction-aware band) and the ``latency`` block (per-enclave
# p50/p95/p99 cycle summaries).  Version-1 baselines still load; the
# gate warns about — rather than fails on — the blocks they lack (see
# repro.bench.compare).
ARTIFACT_VERSION = 2
SUPPORTED_ARTIFACT_VERSIONS = (1, 2)
ARTIFACT_KIND = "hyperenclave-bench"

# Provenance fields that may legitimately differ between a committed
# baseline and a fresh run; the gate never compares them.
INFORMATIONAL_PROVENANCE = ("git_commit", "python")


def artifact_name(bench_name: str) -> str:
    """The artifact file name for one benchmark."""
    return f"BENCH_{bench_name}.json"


def artifact_path(directory: str | pathlib.Path,
                  bench_name: str) -> pathlib.Path:
    """Where ``BENCH_<name>.json`` lives under ``directory``."""
    return pathlib.Path(directory) / artifact_name(bench_name)


# -- metric flattening -------------------------------------------------------

def flatten_metrics(value, prefix: str = "") -> dict[str, float]:
    """Every numeric leaf of a nested figure structure, by dot-path.

    Bools, strings and Nones are skipped (a ``None`` is the paper's "-"
    cell, not a zero); list elements use their index as the segment.
    """
    out: dict[str, float] = {}
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return out
    if isinstance(value, (int, float)):
        out[prefix or "value"] = float(value)
        return out
    if isinstance(value, dict):
        items = [(str(k), v) for k, v in value.items()]
    elif isinstance(value, (list, tuple)):
        items = [(str(i), v) for i, v in enumerate(value)]
    else:
        return out
    for key, sub in items:
        path = f"{prefix}.{key}" if prefix else key
        out.update(flatten_metrics(sub, path))
    return out


def _jsonable(value):
    """Best-effort conversion of figure structures to JSON-ready data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if dataclasses.is_dataclass(value):
        return _jsonable(dataclasses.asdict(value))
    return repr(value)


# -- provenance --------------------------------------------------------------

def costs_fingerprint() -> str:
    """A stable hash over the calibrated cost model.

    Any change to ``repro.hw.costs`` — a constant, a step itemization —
    changes this fingerprint, so a baseline records exactly which cost
    model produced it.
    """
    from repro.hw import costs
    parts = []
    for name in sorted(vars(costs)):
        if name.startswith("_"):
            continue
        value = getattr(costs, name)
        if isinstance(value, bool) or callable(value) \
                or isinstance(value, type):
            continue
        if isinstance(value, (int, float, str, list, tuple, dict)) \
                or dataclasses.is_dataclass(value):
            parts.append(f"{name}={_jsonable(value)!r}")
    digest = hashlib.sha256("\n".join(parts).encode()).hexdigest()
    return digest[:16]


def _git_commit() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, cwd=pathlib.Path(__file__).resolve().parents[3])
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def provenance() -> dict:
    """The artifact provenance block (fingerprint, python, commit)."""
    import sys
    from repro.hw import fastpath
    return {
        "costs_fingerprint": costs_fingerprint(),
        "python": ".".join(map(str, sys.version_info[:3])),
        "git_commit": _git_commit(),
        "determinism": "seeded simulation (repro-lint R001)",
        # Simulated figures are fastpath-invariant (pinned by
        # tests/fastpath); wall-clock throughput is not, so the gate
        # skips throughput.* when baseline and current modes differ.
        "fastpath": fastpath.mode_name(),
    }


# -- artifact assembly -------------------------------------------------------

def throughput_block(spec, telemetry_doc: dict | None, wall_seconds: float,
                     *, bare_cycles: float | None = None) -> dict:
    """The wall-clock speed digest: cycles per wall-second plus shares.

    ``sim_cycles_per_wall_second`` is the headline metric ROADMAP item 1
    locks in; the per-subsystem wall shares (from the ``.self_wall_ns``
    span counters, so nesting never double-counts) say *where* the host
    seconds went.  ``harness`` is wall time outside any span — figure
    shaping, artifact assembly, interpreter overhead.

    Benchmarks that drive hardware models with bare cycle counters (no
    Machine/Telemetry — the sink's ``register_cycles`` path) pass
    ``bare_cycles`` and no ``telemetry_doc``: all wall time is charged to
    ``harness`` since no span observed it.
    """
    from repro.telemetry.export import wall_ns_by_subsystem

    if telemetry_doc is not None:
        total_cycles = telemetry_doc["combined"]["total_cycles"]
        wall_ns = wall_ns_by_subsystem(telemetry_doc)
    else:
        total_cycles = bare_cycles or 0
        wall_ns = {}
    span_wall = sum(wall_ns.values())
    total_ns = wall_seconds * 1e9
    wall_ns = dict(sorted(wall_ns.items()))
    wall_ns["harness"] = max(total_ns - span_wall, 0.0)
    shares = {sub: ns / total_ns if total_ns else 0.0
              for sub, ns in wall_ns.items()}
    return {
        "wall_seconds": wall_seconds,
        "sim_cycles": total_cycles,
        "sim_cycles_per_wall_second":
            total_cycles / wall_seconds if wall_seconds else 0.0,
        # The gate's direction-aware band travels with the baseline so
        # `check` uses the band in force when it was recorded.
        "tolerance": spec.throughput_tolerance,
        "direction": "higher_is_better",
        "wall_ns_by_subsystem": wall_ns,
        "wall_share_by_subsystem": shares,
    }


def latency_block(telemetry_doc: dict) -> dict | None:
    """Per-enclave p50/p95/p99 cycle latencies for the edge-call spans.

    Deterministic (cycle domain), so these metrics sit under the normal
    tolerance band — including the zero band of the exact tables.
    """
    from repro.telemetry.export import latency_summaries

    summary = latency_summaries(telemetry_doc)
    return summary or None


def build_artifact(spec, figures, telemetry_doc: dict | None,
                   profile_doc: dict | None,
                   fingerprints: dict[str, str] | None = None, *,
                   wall_seconds: float | None = None,
                   bare_cycles: float | None = None,
                   timeline_doc: dict | None = None,
                   requests_doc: dict | None = None) -> dict:
    """Assemble one ``BENCH_<name>.json`` document.

    ``fingerprints`` maps machine labels to ``Machine.state_hash()``
    values; the gate compares them with *exact equality* (no tolerance
    band), turning the bench gate into a cross-run determinism gate.
    ``wall_seconds`` is the host wall-clock duration of the benchmark's
    ``run()``; when given (and telemetry captured cycles), the artifact
    gains the ``throughput`` block and its direction-aware gated metric.
    ``timeline_doc`` (``--timeline``) and ``requests_doc``
    (``--requests``) ride along informationally: the gate compares only
    ``metrics`` and ``fingerprints``, so neither block ever gates and
    baselines recorded without them stay green.
    """
    from repro.profiler import profile_summary

    figures = _jsonable(figures)
    metrics = flatten_metrics(figures)

    telemetry_digest = None
    throughput = None
    latency = None
    if telemetry_doc is not None and telemetry_doc["machines"]:
        combined = telemetry_doc["combined"]
        telemetry_digest = {
            "machines": len(telemetry_doc["machines"]),
            "total_cycles": combined["total_cycles"],
            "by_subsystem": combined["by_subsystem"],
        }
        metrics["telemetry.total_cycles"] = float(combined["total_cycles"])
        for sub, cycles in combined["by_subsystem"].items():
            metrics[f"telemetry.by_subsystem.{sub}"] = float(cycles)
        if wall_seconds is not None and wall_seconds > 0:
            throughput = throughput_block(spec, telemetry_doc, wall_seconds)
            metrics["throughput.sim_cycles_per_wall_second"] = \
                float(throughput["sim_cycles_per_wall_second"])
        latency = latency_block(telemetry_doc)
        if latency is not None:
            metrics.update(flatten_metrics(latency, "latency"))
    elif (bare_cycles and wall_seconds is not None and wall_seconds > 0):
        # No machines, but the run registered bare cycle counters with
        # the sink (e.g. fig11's memory-latency sweep): the throughput
        # gate still applies, with all wall time attributed to harness.
        throughput = throughput_block(spec, None, wall_seconds,
                                      bare_cycles=bare_cycles)
        metrics["throughput.sim_cycles_per_wall_second"] = \
            float(throughput["sim_cycles_per_wall_second"])

    profile_digest = None
    if profile_doc is not None and profile_doc["machines"]:
        profile_digest = profile_summary(profile_doc)
        metrics["profile.total_span_cycles"] = \
            float(profile_digest["total_span_cycles"])

    return {
        "version": ARTIFACT_VERSION,
        "artifact_version": ARTIFACT_VERSION,
        "kind": ARTIFACT_KIND,
        "name": spec.name,
        "title": spec.title,
        "bench_kind": spec.kind,
        "tolerance": spec.tolerance,
        "provenance": provenance(),
        "figures": figures,
        "metrics": metrics,
        "fingerprints": dict(fingerprints) if fingerprints else {},
        "telemetry": telemetry_digest,
        "throughput": throughput,
        "latency": latency,
        "profile": profile_digest,
        "timeline": timeline_doc,
        "requests": requests_doc,
    }


def artifact_version(document: dict) -> int:
    """The schema version of a loaded artifact (1 when pre-versioning).

    Version-2 artifacts carry the explicit ``artifact_version`` field;
    version-1 baselines only have ``version``.
    """
    return int(document.get("artifact_version",
                            document.get("version", 1)))


def validate_artifact(document) -> None:
    """Raise ``ValueError`` unless ``document`` is a bench artifact."""
    if not isinstance(document, dict):
        raise ValueError("artifact: expected an object")
    if document.get("version") not in SUPPORTED_ARTIFACT_VERSIONS:
        raise ValueError(
            f"artifact: unsupported version {document.get('version')!r} "
            f"(supported: {SUPPORTED_ARTIFACT_VERSIONS})")
    if document.get("kind") != ARTIFACT_KIND:
        raise ValueError(
            f"artifact: unexpected kind {document.get('kind')!r}")
    for key in ("name", "title", "bench_kind"):
        if not isinstance(document.get(key), str):
            raise ValueError(f"artifact: missing string field {key!r}")
    metrics = document.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise ValueError("artifact: missing non-empty metrics object")
    for key, value in metrics.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"artifact: non-numeric metric {key!r}")
    fingerprints = document.get("fingerprints", {})
    if not isinstance(fingerprints, dict):
        raise ValueError("artifact: fingerprints must be an object")
    for key, value in fingerprints.items():
        if not isinstance(value, str):
            raise ValueError(
                f"artifact: non-string fingerprint {key!r}")
    throughput = document.get("throughput")
    if throughput is not None:
        if not isinstance(throughput, dict):
            raise ValueError("artifact: throughput must be an object")
        rate = throughput.get("sim_cycles_per_wall_second")
        if isinstance(rate, bool) or not isinstance(rate, (int, float)) \
                or rate <= 0:
            raise ValueError(
                f"artifact: throughput.sim_cycles_per_wall_second must "
                f"be a positive number, got {rate!r}")


def write_artifact(path: str | pathlib.Path, document: dict
                   ) -> pathlib.Path:
    """Validate and write one artifact; returns the path."""
    validate_artifact(document)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_artifact(path: str | pathlib.Path) -> dict:
    """Read and validate one ``BENCH_<name>.json`` artifact."""
    document = json.loads(pathlib.Path(path).read_text())
    validate_artifact(document)
    return document
