"""Human-readable digests of ``BENCH_<name>.json`` artifacts.

``python -m repro.bench report`` renders, per artifact: the headline
throughput (simulated cycles per host wall-second and where the wall
time went), the per-enclave latency percentile table (p50/p95/p99 in
simulated cycles, Stress-SGX-style), and the cycle digest.  It reads
committed baselines by default, so "how fast is the simulator on the
gate set" is one command with no benchmark run.

``--format markdown`` renders the same digests as GitHub-flavored
markdown tables, ready to paste into a PR description or job summary.
"""

from __future__ import annotations


def _fmt_cycles(value: float | None) -> str:
    if value is None:
        return "-"
    return f"{value:,.0f}"


def throughput_section(artifact: dict) -> list[str]:
    """Render the throughput block, or a pointer when absent."""
    throughput = artifact.get("throughput")
    if not throughput:
        return ["  throughput: not recorded (artifact predates the "
                "throughput gate; regenerate with `python -m repro.bench "
                "run`)"]
    rate = throughput["sim_cycles_per_wall_second"]
    out = [f"  throughput: {rate:,.0f} simulated cycles / wall-second "
           f"({throughput['sim_cycles']:,.0f} cycles in "
           f"{throughput['wall_seconds']:.3f} s)",
           f"  gate band: fail below "
           f"{(1 - throughput['tolerance']):.0%} of baseline "
           f"(slowdowns only; speedups always pass)"]
    shares = throughput.get("wall_share_by_subsystem") or {}
    if shares:
        out.append("  wall time by subsystem:")
        for sub, share in sorted(shares.items(), key=lambda kv: -kv[1]):
            ns = throughput["wall_ns_by_subsystem"].get(sub, 0)
            out.append(f"    {sub:<12} {ns / 1e6:>10,.2f} ms  "
                       f"({share:6.1%})")
    return out


def latency_section(artifact: dict) -> list[str]:
    """Render the per-enclave latency percentile table."""
    latency = artifact.get("latency")
    if not latency:
        return ["  latency: no per-enclave span histograms recorded"]
    out = ["  per-enclave latency (simulated cycles):",
           f"    {'machine':<12} {'enclave':<8} {'span':<18} "
           f"{'count':>8} {'p50':>10} {'p95':>10} {'p99':>10}"]
    for machine, enclaves in sorted(latency.items()):
        for enclave, spans in sorted(enclaves.items()):
            for span, row in sorted(spans.items()):
                out.append(
                    f"    {machine:<12} {enclave:<8} {span:<18} "
                    f"{row['count']:>8} "
                    f"{_fmt_cycles(row.get('p50')):>10} "
                    f"{_fmt_cycles(row.get('p95')):>10} "
                    f"{_fmt_cycles(row.get('p99')):>10}")
    return out


def artifact_report(artifact: dict) -> str:
    """The full plain-text digest of one artifact."""
    out = [f"{artifact['name']} — {artifact['title']} "
           f"[{artifact['bench_kind']}]",
           f"  artifact_version {artifact.get('artifact_version', 1)}, "
           f"{len(artifact['metrics'])} gated metric(s), "
           f"tolerance {artifact['tolerance']:.1%}"]
    telemetry = artifact.get("telemetry")
    if telemetry:
        out.append(f"  simulated cycles: {telemetry['total_cycles']:,.0f} "
                   f"across {telemetry['machines']} machine(s)")
    out.extend(throughput_section(artifact))
    out.extend(latency_section(artifact))
    return "\n".join(out)


def report_all(artifacts: list[dict]) -> str:
    """Digest every artifact, blank-line separated."""
    return "\n\n".join(artifact_report(a) for a in artifacts)


def _md_table(header: list[str], rows: list[list[str]]) -> list[str]:
    out = ["| " + " | ".join(header) + " |",
           "| " + " | ".join("---" for _ in header) + " |"]
    out.extend("| " + " | ".join(row) + " |" for row in rows)
    return out


def throughput_section_markdown(artifact: dict) -> list[str]:
    """Markdown twin of :func:`throughput_section`."""
    throughput = artifact.get("throughput")
    if not throughput:
        return ["_throughput: not recorded (artifact predates the "
                "throughput gate; regenerate with `python -m repro.bench "
                "run`)_"]
    rate = throughput["sim_cycles_per_wall_second"]
    out = [f"**Throughput:** {rate:,.0f} simulated cycles / wall-second "
           f"({throughput['sim_cycles']:,.0f} cycles in "
           f"{throughput['wall_seconds']:.3f} s); gate fails below "
           f"{(1 - throughput['tolerance']):.0%} of baseline "
           f"(slowdowns only).", ""]
    shares = throughput.get("wall_share_by_subsystem") or {}
    if shares:
        rows = [[sub,
                 f"{throughput['wall_ns_by_subsystem'].get(sub, 0) / 1e6:,.2f}",
                 f"{share:.1%}"]
                for sub, share in sorted(shares.items(),
                                         key=lambda kv: -kv[1])]
        out.extend(_md_table(["subsystem", "wall ms", "share"], rows))
    return out


def latency_section_markdown(artifact: dict) -> list[str]:
    """Markdown twin of :func:`latency_section`."""
    latency = artifact.get("latency")
    if not latency:
        return ["_latency: no per-enclave span histograms recorded_"]
    rows = []
    for machine, enclaves in sorted(latency.items()):
        for enclave, spans in sorted(enclaves.items()):
            for span, row in sorted(spans.items()):
                rows.append([machine, str(enclave), span,
                             str(row["count"]),
                             _fmt_cycles(row.get("p50")),
                             _fmt_cycles(row.get("p95")),
                             _fmt_cycles(row.get("p99"))])
    out = ["**Per-enclave latency (simulated cycles):**", ""]
    out.extend(_md_table(
        ["machine", "enclave", "span", "count", "p50", "p95", "p99"], rows))
    return out


def artifact_report_markdown(artifact: dict) -> str:
    """The full GitHub-flavored-markdown digest of one artifact."""
    out = [f"### {artifact['name']} — {artifact['title']} "
           f"[{artifact['bench_kind']}]",
           "",
           f"artifact_version {artifact.get('artifact_version', 1)}, "
           f"{len(artifact['metrics'])} gated metric(s), "
           f"tolerance {artifact['tolerance']:.1%}"]
    telemetry = artifact.get("telemetry")
    if telemetry:
        out.append(f"simulated cycles: {telemetry['total_cycles']:,.0f} "
                   f"across {telemetry['machines']} machine(s)")
    out.append("")
    out.extend(throughput_section_markdown(artifact))
    out.append("")
    out.extend(latency_section_markdown(artifact))
    return "\n".join(out)


def report_all_markdown(artifacts: list[dict]) -> str:
    """Markdown digest of every artifact, blank-line separated."""
    return "\n\n".join(artifact_report_markdown(a) for a in artifacts)
