"""Human-readable digests of ``BENCH_<name>.json`` artifacts.

``python -m repro.bench report`` renders, per artifact: the headline
throughput (simulated cycles per host wall-second and where the wall
time went), the per-enclave latency percentile table (p50/p95/p99 in
simulated cycles, Stress-SGX-style), and the cycle digest.  It reads
committed baselines by default, so "how fast is the simulator on the
gate set" is one command with no benchmark run.

``--format markdown`` renders the same digests as GitHub-flavored
markdown tables, ready to paste into a PR description or job summary.
"""

from __future__ import annotations


def _fmt_cycles(value: float | None) -> str:
    if value is None:
        return "-"
    return f"{value:,.0f}"


def throughput_section(artifact: dict) -> list[str]:
    """Render the throughput block, or a pointer when absent."""
    throughput = artifact.get("throughput")
    if not throughput:
        return ["  throughput: not recorded (artifact predates the "
                "throughput gate; regenerate with `python -m repro.bench "
                "run`)"]
    rate = throughput["sim_cycles_per_wall_second"]
    out = [f"  throughput: {rate:,.0f} simulated cycles / wall-second "
           f"({throughput['sim_cycles']:,.0f} cycles in "
           f"{throughput['wall_seconds']:.3f} s)",
           f"  gate band: fail below "
           f"{(1 - throughput['tolerance']):.0%} of baseline "
           f"(slowdowns only; speedups always pass)"]
    shares = throughput.get("wall_share_by_subsystem") or {}
    if shares:
        out.append("  wall time by subsystem:")
        for sub, share in sorted(shares.items(), key=lambda kv: -kv[1]):
            ns = throughput["wall_ns_by_subsystem"].get(sub, 0)
            out.append(f"    {sub:<12} {ns / 1e6:>10,.2f} ms  "
                       f"({share:6.1%})")
    return out


def latency_section(artifact: dict) -> list[str]:
    """Render the per-enclave latency percentile table."""
    latency = artifact.get("latency")
    if not latency:
        return ["  latency: no per-enclave span histograms recorded"]
    out = ["  per-enclave latency (simulated cycles):",
           f"    {'machine':<12} {'enclave':<8} {'span':<18} "
           f"{'count':>8} {'p50':>10} {'p95':>10} {'p99':>10}"]
    for machine, enclaves in sorted(latency.items()):
        for enclave, spans in sorted(enclaves.items()):
            for span, row in sorted(spans.items()):
                out.append(
                    f"    {machine:<12} {enclave:<8} {span:<18} "
                    f"{row['count']:>8} "
                    f"{_fmt_cycles(row.get('p50')):>10} "
                    f"{_fmt_cycles(row.get('p95')):>10} "
                    f"{_fmt_cycles(row.get('p99')):>10}")
    return out


def _timeline_episodes(artifact: dict) -> list[dict]:
    """Pressure episodes of the artifact's ``timeline`` block, labeled."""
    timeline_doc = artifact.get("timeline")
    if not timeline_doc:
        return []
    from repro.telemetry.timeline import detect_episodes
    episodes = []
    for timeline in timeline_doc.get("timelines", []):
        for ep in detect_episodes(timeline):
            episodes.append({"machine": timeline["label"], **ep})
    return episodes


def timeline_section(artifact: dict) -> list[str]:
    """Render the timeline pressure-episode table (empty when untimed)."""
    episodes = _timeline_episodes(artifact)
    if not episodes:
        return []
    out = ["  EPC pressure episodes (from the timeline block):",
           f"    {'machine':<14} {'start cycle':>14} {'end cycle':>14} "
           f"{'pages':>7} {'depth':>7}  victim -> aggressor"]
    for ep in episodes:
        out.append(f"    {ep['machine']:<14} {ep['start_cycle']:>14,} "
                   f"{ep['end_cycle']:>14,} {ep['pages']:>7g} "
                   f"{ep['depth']:>7g}  {ep['victim']} -> "
                   f"{ep['aggressor']}")
    return out


def requests_section(artifact: dict) -> list[str]:
    """Render the request-trace digest (empty when untraced)."""
    requests_doc = artifact.get("requests")
    if not requests_doc:
        return []
    from repro.analysis.critpath import interference_report, latency_tables
    out = ["  traced requests (per tenant and call, simulated cycles):",
           f"    {'trace':<14} {'tenant':<10} {'call':<16} {'count':>6} "
           f"{'p50':>10} {'p95':>10} {'p99':>10}  tail cause"]
    for row in latency_tables(requests_doc):
        out.append(f"    {row['trace']:<14} {row['tenant']:<10} "
                   f"{row['name']:<16} {row['count']:>6} "
                   f"{row['p50']:>10,} {row['p95']:>10,} "
                   f"{row['p99']:>10,}  {row['tail_cause']}")
    for entry in interference_report(requests_doc):
        out.append(f"  interference [{entry['trace']}]: "
                   f"victim={entry['victim']} "
                   f"aggressor={entry['aggressor']}")
        for irow in entry["rows"]:
            out.append(f"    {irow['victim']} <- {irow['aggressor']}: "
                       f"{irow['frames_stolen']:g} frames stolen, "
                       f"{irow['victim_requests_stalled']} request(s) "
                       f"stalled")
    return out


def artifact_report(artifact: dict) -> str:
    """The full plain-text digest of one artifact."""
    out = [f"{artifact['name']} — {artifact['title']} "
           f"[{artifact['bench_kind']}]",
           f"  artifact_version {artifact.get('artifact_version', 1)}, "
           f"{len(artifact['metrics'])} gated metric(s), "
           f"tolerance {artifact['tolerance']:.1%}"]
    telemetry = artifact.get("telemetry")
    if telemetry:
        out.append(f"  simulated cycles: {telemetry['total_cycles']:,.0f} "
                   f"across {telemetry['machines']} machine(s)")
    out.extend(throughput_section(artifact))
    out.extend(latency_section(artifact))
    out.extend(timeline_section(artifact))
    out.extend(requests_section(artifact))
    return "\n".join(out)


def report_all(artifacts: list[dict]) -> str:
    """Digest every artifact, blank-line separated."""
    return "\n\n".join(artifact_report(a) for a in artifacts)


def _md_table(header: list[str], rows: list[list[str]]) -> list[str]:
    out = ["| " + " | ".join(header) + " |",
           "| " + " | ".join("---" for _ in header) + " |"]
    out.extend("| " + " | ".join(row) + " |" for row in rows)
    return out


def throughput_section_markdown(artifact: dict) -> list[str]:
    """Markdown twin of :func:`throughput_section`."""
    throughput = artifact.get("throughput")
    if not throughput:
        return ["_throughput: not recorded (artifact predates the "
                "throughput gate; regenerate with `python -m repro.bench "
                "run`)_"]
    rate = throughput["sim_cycles_per_wall_second"]
    out = [f"**Throughput:** {rate:,.0f} simulated cycles / wall-second "
           f"({throughput['sim_cycles']:,.0f} cycles in "
           f"{throughput['wall_seconds']:.3f} s); gate fails below "
           f"{(1 - throughput['tolerance']):.0%} of baseline "
           f"(slowdowns only).", ""]
    shares = throughput.get("wall_share_by_subsystem") or {}
    if shares:
        rows = [[sub,
                 f"{throughput['wall_ns_by_subsystem'].get(sub, 0) / 1e6:,.2f}",
                 f"{share:.1%}"]
                for sub, share in sorted(shares.items(),
                                         key=lambda kv: -kv[1])]
        out.extend(_md_table(["subsystem", "wall ms", "share"], rows))
    return out


def latency_section_markdown(artifact: dict) -> list[str]:
    """Markdown twin of :func:`latency_section`."""
    latency = artifact.get("latency")
    if not latency:
        return ["_latency: no per-enclave span histograms recorded_"]
    rows = []
    for machine, enclaves in sorted(latency.items()):
        for enclave, spans in sorted(enclaves.items()):
            for span, row in sorted(spans.items()):
                rows.append([machine, str(enclave), span,
                             str(row["count"]),
                             _fmt_cycles(row.get("p50")),
                             _fmt_cycles(row.get("p95")),
                             _fmt_cycles(row.get("p99"))])
    out = ["**Per-enclave latency (simulated cycles):**", ""]
    out.extend(_md_table(
        ["machine", "enclave", "span", "count", "p50", "p95", "p99"], rows))
    return out


def timeline_section_markdown(artifact: dict) -> list[str]:
    """Markdown twin of :func:`timeline_section`."""
    episodes = _timeline_episodes(artifact)
    if not episodes:
        return []
    rows = [[ep["machine"], f"{ep['start_cycle']:,}",
             f"{ep['end_cycle']:,}", f"{ep['pages']:g}",
             f"{ep['depth']:g}", ep["victim"], ep["aggressor"]]
            for ep in episodes]
    out = ["**EPC pressure episodes (from the timeline block):**", ""]
    out.extend(_md_table(["machine", "start cycle", "end cycle", "pages",
                          "depth", "victim", "aggressor"], rows))
    return out


def requests_section_markdown(artifact: dict) -> list[str]:
    """Markdown twin of :func:`requests_section`."""
    requests_doc = artifact.get("requests")
    if not requests_doc:
        return []
    from repro.analysis.critpath import interference_report, latency_tables
    rows = [[row["trace"], row["tenant"], row["name"], str(row["count"]),
             f"{row['p50']:,}", f"{row['p95']:,}", f"{row['p99']:,}",
             row["tail_cause"]]
            for row in latency_tables(requests_doc)]
    out = ["**Traced requests (per tenant and call, simulated cycles):**",
           ""]
    out.extend(_md_table(["trace", "tenant", "call", "count", "p50",
                          "p95", "p99", "tail cause"], rows))
    irows = [[entry["trace"], irow["victim"], irow["aggressor"],
              f"{irow['frames_stolen']:g}",
              str(irow["victim_requests_stalled"])]
             for entry in interference_report(requests_doc)
             for irow in entry["rows"]]
    if irows:
        out.append("")
        out.append("**Cross-tenant interference (EPC steals):**")
        out.append("")
        out.extend(_md_table(["trace", "victim", "aggressor",
                              "frames stolen", "requests stalled"], irows))
    return out


def artifact_report_markdown(artifact: dict) -> str:
    """The full GitHub-flavored-markdown digest of one artifact."""
    out = [f"### {artifact['name']} — {artifact['title']} "
           f"[{artifact['bench_kind']}]",
           "",
           f"artifact_version {artifact.get('artifact_version', 1)}, "
           f"{len(artifact['metrics'])} gated metric(s), "
           f"tolerance {artifact['tolerance']:.1%}"]
    telemetry = artifact.get("telemetry")
    if telemetry:
        out.append(f"simulated cycles: {telemetry['total_cycles']:,.0f} "
                   f"across {telemetry['machines']} machine(s)")
    out.append("")
    out.extend(throughput_section_markdown(artifact))
    out.append("")
    out.extend(latency_section_markdown(artifact))
    for section in (timeline_section_markdown(artifact),
                    requests_section_markdown(artifact)):
        if section:
            out.append("")
            out.extend(section)
    return "\n".join(out)


def report_all_markdown(artifacts: list[dict]) -> str:
    """Markdown digest of every artifact, blank-line separated."""
    return "\n\n".join(artifact_report_markdown(a) for a in artifacts)
