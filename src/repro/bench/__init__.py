"""Unified benchmark harness + continuous regression gate.

One registry over every ``benchmarks/bench_*.py`` paper reproduction,
one runner that captures telemetry and exact cycle profiles alongside
the figure values, one artifact format (``BENCH_<name>.json``) with
committed baselines, and one gate (``python -m repro.bench check``) that
fails CI when a metric leaves its tolerance band.

See docs/OBSERVABILITY.md ("The bench gate") for the workflow.
"""

from repro.bench.artifact import (ARTIFACT_KIND, ARTIFACT_VERSION,
                                  SUPPORTED_ARTIFACT_VERSIONS,
                                  artifact_path, artifact_version,
                                  build_artifact, costs_fingerprint,
                                  flatten_metrics, load_artifact,
                                  validate_artifact, write_artifact)
from repro.bench.compare import (DEFAULT_THROUGHPUT_TOLERANCE,
                                 CompareResult, MetricDelta,
                                 compare_artifacts, compare_report)
from repro.bench.registry import REGISTRY, BenchSpec, gate_specs, resolve
from repro.bench.report import artifact_report, report_all
from repro.bench.runner import (DEFAULT_BASELINE_DIR, SLOWDOWN_ENV,
                                RunOutput, check_benches, run_benches,
                                run_one, update_results_json)

__all__ = [
    "ARTIFACT_KIND", "ARTIFACT_VERSION", "SUPPORTED_ARTIFACT_VERSIONS",
    "artifact_path", "artifact_version", "build_artifact",
    "costs_fingerprint", "flatten_metrics", "load_artifact",
    "validate_artifact", "write_artifact",
    "DEFAULT_THROUGHPUT_TOLERANCE", "CompareResult", "MetricDelta",
    "compare_artifacts", "compare_report",
    "REGISTRY", "BenchSpec", "gate_specs", "resolve",
    "artifact_report", "report_all",
    "DEFAULT_BASELINE_DIR", "SLOWDOWN_ENV", "RunOutput", "check_benches",
    "run_benches", "run_one", "update_results_json",
]
