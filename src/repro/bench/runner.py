"""Run benchmarks with full observability and emit/check artifacts.

``run_one`` executes one registered benchmark with a fresh process-wide
telemetry sink active, so every machine the experiment creates is
captured (the :class:`~repro.hw.machine.Machine` constructor registers
itself); from the captured spans it builds the exact cycle profile, then
assembles the ``BENCH_<name>.json`` artifact.

Telemetry and the profiler observe the simulated clock and charge
nothing, so the artifact's calibrated figure values are identical to a
bare run — the gate compares like with like.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time
from dataclasses import dataclass

from repro.bench.artifact import (artifact_path, build_artifact,
                                  load_artifact, write_artifact)
from repro.bench.compare import CompareResult, compare_artifacts
from repro.bench.registry import BenchSpec

REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_BASELINE_DIR = REPO_ROOT / "benchmarks" / "baselines"
DEFAULT_RESULTS_PATH = REPO_ROOT / "benchmarks" / "results.json"

# The throughput gate's self-test hook: a float number of seconds slept
# inside the timed window of every run.  CI's throughput-smoke job sets
# it to prove an artificial slowdown trips the direction-aware band;
# it exists ONLY for that — simulated figures are unaffected.
SLOWDOWN_ENV = "REPRO_BENCH_SLOWDOWN_S"


def _injected_slowdown() -> float:
    try:
        return float(os.environ.get(SLOWDOWN_ENV, "") or 0.0)
    except ValueError:
        return 0.0


def _ensure_benchmarks_importable() -> None:
    """Put the repo root on sys.path so ``benchmarks.*`` imports."""
    try:
        import benchmarks  # noqa: F401
        return
    except ImportError:
        pass
    sys.path.insert(0, str(REPO_ROOT))


@dataclass
class RunOutput:
    """Everything one benchmark run produced."""

    spec: BenchSpec
    artifact: dict
    telemetry_doc: dict | None
    profile_doc: dict | None
    written: list[pathlib.Path]


def run_one(spec: BenchSpec, *, profile: bool = True,
            artifacts_dir: str | pathlib.Path | None = None,
            record_dir: str | pathlib.Path | None = None,
            timeline_interval: int | None = None,
            trace_requests: bool = False) -> RunOutput:
    """Run one benchmark under a fresh telemetry sink; build its artifact.

    When ``artifacts_dir`` is given, the side artifacts land there:
    ``<name>.telemetry.json`` + ``<name>.telemetry.trace.json`` (snapshot
    and Chrome trace), ``<name>.profile.json`` (full profile document)
    and ``<name>.collapsed`` + ``<name>.wall.collapsed`` (cycle- and
    wall-weighted flamegraph stacks — the pair is the efficiency
    flamegraph).

    When ``record_dir`` is given, a flight recorder is active for the
    run and its journal lands at ``<record_dir>/<name>.journal.json`` —
    replayable with ``python -m repro.flightrec replay``.  Recording is
    a pure observer, so the artifact's figures are unchanged.

    When ``timeline_interval`` is given, every machine gets a
    cycle-domain timeline sampler at that cadence; the artifact gains an
    informational ``timeline`` block (never gated) and, with
    ``artifacts_dir``, a ``<name>.timeline.json`` side file.  Sampling
    is a pure observer too: figures and fingerprints are unchanged.

    When ``trace_requests`` is true, every machine gets a request tracer
    (``repro.telemetry.requests``): each top-level ecall becomes a
    traced request with a causal segment tree.  The artifact gains an
    informational ``requests`` block and, with ``artifacts_dir``, a
    ``<name>.requests.json`` side file.  Tracing charges nothing —
    figures and fingerprints are bit-identical to an untraced run.
    """
    from repro.flightrec import forensics
    from repro.flightrec import recorder as flightrec_recorder
    from repro.profiler import (host_clock_ns, profile_document,
                                write_collapsed, write_wall_collapsed)
    from repro.telemetry import sink as telemetry_sink

    _ensure_benchmarks_importable()
    rec = None
    journal_path = None
    slowdown = _injected_slowdown()
    with telemetry_sink.capture(timeline_interval,
                                trace_requests=trace_requests) as sink:
        if record_dir is not None:
            rec = flightrec_recorder.FlightRecorder(f"bench:{spec.name}")
            flightrec_recorder.activate(rec)
        # Pull in the benchmark module (and the support modules a first
        # run would otherwise import lazily) before starting the clock:
        # module loading is host-process setup, not simulator work.
        spec.load()
        import repro.analysis.tables    # noqa: F401
        import repro.hw.statehash       # noqa: F401
        # The throughput clock wraps exactly the benchmark's run() — the
        # same window the spans observe — so sim_cycles_per_wall_second
        # measures the simulator, not artifact I/O.
        wall_start_ns = host_clock_ns()
        try:
            figures = spec.run()
            if slowdown > 0:
                time.sleep(slowdown)
        except Exception as exc:
            # A crashed benchmark still leaves evidence: one forensic
            # bundle per machine (when enabled) before propagating.
            for label, machine in sink.machines():
                forensics.emit_for_machine(machine, exc, label=label)
            raise
        finally:
            if rec is not None:
                flightrec_recorder.deactivate()
        wall_seconds = (host_clock_ns() - wall_start_ns) / 1e9
        fingerprints = sink.state_fingerprints()
        bare_cycles = sink.bare_cycles_total()
    if rec is not None:
        journal_path = rec.finish(figures).write(
            pathlib.Path(record_dir) / f"{spec.name}.journal.json")

    telemetry_doc = sink.document() if sink.items else None
    profile_doc = profile_document(sink.items) \
        if profile and sink.items else None
    timeline_doc = sink.timeline_document() \
        if timeline_interval is not None else None
    requests_doc = sink.requests_document() if trace_requests else None
    artifact = build_artifact(spec, figures, telemetry_doc, profile_doc,
                              fingerprints, wall_seconds=wall_seconds,
                              bare_cycles=bare_cycles,
                              timeline_doc=timeline_doc,
                              requests_doc=requests_doc)

    written: list[pathlib.Path] = []
    if artifacts_dir is not None:
        artifacts_dir = pathlib.Path(artifacts_dir)
        artifacts_dir.mkdir(parents=True, exist_ok=True)
        if sink.items:
            written.extend(
                sink.write(artifacts_dir / f"{spec.name}.telemetry.json"))
        if timeline_doc is not None:
            from repro.telemetry.timeline import write_timeline
            timeline_path = artifacts_dir / f"{spec.name}.timeline.json"
            write_timeline(timeline_path, timeline_doc)
            written.append(timeline_path)
        if requests_doc is not None:
            from repro.telemetry.requests import write_requests
            requests_path = artifacts_dir / f"{spec.name}.requests.json"
            write_requests(requests_path, requests_doc)
            written.append(requests_path)
        if profile_doc is not None:
            profile_path = artifacts_dir / f"{spec.name}.profile.json"
            profile_path.write_text(
                json.dumps(profile_doc, indent=2, sort_keys=True))
            written.append(profile_path)
            written.append(write_collapsed(
                artifacts_dir / f"{spec.name}.collapsed", profile_doc))
            # The wall-weighted twin: cycle vs wall widths side by side
            # are the efficiency flamegraph.
            written.append(write_wall_collapsed(
                artifacts_dir / f"{spec.name}.wall.collapsed", profile_doc))
    if journal_path is not None:
        written.append(journal_path)
    return RunOutput(spec=spec, artifact=artifact,
                     telemetry_doc=telemetry_doc, profile_doc=profile_doc,
                     written=written)


def update_results_json(name: str, figures,
                        results_path: str | pathlib.Path) -> None:
    """Mirror the pytest ``record_result`` fixture for standalone runs.

    ``benchmarks/results.json`` is untracked scratch output; the
    committed record is the ``BENCH_*.json`` baseline.
    """
    results_path = pathlib.Path(results_path)
    results: dict = {}
    if results_path.exists():
        try:
            results.update(json.loads(results_path.read_text()))
        except json.JSONDecodeError:
            pass
    results[name] = figures
    results_path.parent.mkdir(parents=True, exist_ok=True)
    results_path.write_text(json.dumps(results, indent=2, sort_keys=True))


def run_benches(specs: list[BenchSpec], *,
                baseline_dir: str | pathlib.Path = DEFAULT_BASELINE_DIR,
                artifacts_dir: str | pathlib.Path | None = None,
                results_path: str | pathlib.Path | None =
                DEFAULT_RESULTS_PATH,
                profile: bool = True,
                record_dir: str | pathlib.Path | None = None,
                timeline_interval: int | None = None,
                trace_requests: bool = False,
                log=print) -> list[RunOutput]:
    """Run every spec, writing ``BENCH_<name>.json`` baselines."""
    outputs = []
    for spec in specs:
        log(f"running {spec.name} ({spec.title}) ...")
        output = run_one(spec, profile=profile, artifacts_dir=artifacts_dir,
                         record_dir=record_dir,
                         timeline_interval=timeline_interval,
                         trace_requests=trace_requests)
        path = write_artifact(
            artifact_path(baseline_dir, spec.name), output.artifact)
        output.written.insert(0, path)
        if results_path is not None:
            update_results_json(spec.name, output.artifact["figures"],
                                results_path)
        log(f"  wrote {path} "
            f"({len(output.artifact['metrics'])} metrics)")
        outputs.append(output)
    return outputs


def check_benches(specs: list[BenchSpec], *,
                  baseline_dir: str | pathlib.Path = DEFAULT_BASELINE_DIR,
                  artifacts_dir: str | pathlib.Path | None = None,
                  profile: bool = True,
                  record_dir: str | pathlib.Path | None = None,
                  timeline_interval: int | None = None,
                  trace_requests: bool = False,
                  log=print) -> list[CompareResult]:
    """Re-run every spec and gate it against its committed baseline.

    A missing baseline is itself a gate failure — it means a benchmark
    joined the gate set without `python -m repro.bench run` being
    committed.
    """
    results = []
    for spec in specs:
        base_path = artifact_path(baseline_dir, spec.name)
        if not base_path.exists():
            result = CompareResult(name=spec.name, tolerance=spec.tolerance)
            result.notes.append(
                f"no committed baseline at {base_path}; generate one with "
                f"`python -m repro.bench run {spec.name}`")
            result.deltas.append(
                __missing_baseline_delta(spec))
            results.append(result)
            continue
        log(f"checking {spec.name} against {base_path} ...")
        baseline = load_artifact(base_path)
        output = run_one(spec, profile=profile, artifacts_dir=artifacts_dir,
                         record_dir=record_dir,
                         timeline_interval=timeline_interval,
                         trace_requests=trace_requests)
        results.append(compare_artifacts(baseline, output.artifact))
    return results


def __missing_baseline_delta(spec: BenchSpec):
    from repro.bench.compare import MetricDelta
    return MetricDelta(metric="<baseline>", baseline=None, current=None,
                       tolerance=spec.tolerance)
