"""The bench-harness CLI: ``python -m repro.bench
run|check|diff|report|list``.

* ``run``    — execute benchmarks (default: the gate set) and write
  ``BENCH_<name>.json`` baselines plus flamegraph/trace side artifacts;
* ``check``  — re-run and gate against the committed baselines; exit 1 on
  any regression (this is CI's ``bench-gate`` job);
* ``diff``   — compare two artifacts: per-metric deltas plus the top
  profile frame movements;
* ``report`` — render committed artifacts (throughput, per-enclave
  latency percentiles, cycle digest) without running anything;
* ``list``   — show the registry.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.bench.artifact import artifact_path, load_artifact
from repro.bench.compare import compare_artifacts, compare_report
from repro.bench.registry import REGISTRY, resolve
from repro.bench.report import report_all, report_all_markdown
from repro.bench.runner import (DEFAULT_BASELINE_DIR, DEFAULT_RESULTS_PATH,
                                check_benches, run_benches)


def _add_selection(parser) -> None:
    parser.add_argument("benchmarks", nargs="*", metavar="NAME",
                        help="benchmark names (default: the gate set)")
    parser.add_argument("--all", action="store_true", dest="all_benches",
                        help="every registered benchmark")
    parser.add_argument("--baseline-dir", default=str(DEFAULT_BASELINE_DIR),
                        metavar="DIR",
                        help="where BENCH_<name>.json baselines live")
    parser.add_argument("--artifacts", default=None, metavar="DIR",
                        help="also write telemetry snapshot + Chrome trace "
                             "+ profile + collapsed stacks here")
    parser.add_argument("--no-profile", action="store_true",
                        help="skip building cycle profiles")
    parser.add_argument("--record", default=None, metavar="DIR",
                        dest="record_dir",
                        help="record each run's flight-recorder journal "
                             "here (replayable with `python -m "
                             "repro.flightrec replay`)")
    parser.add_argument("--timeline", type=int, nargs="?",
                        const=250_000, default=None, metavar="CYCLES",
                        dest="timeline_interval",
                        help="sample a cycle-domain timeline every CYCLES "
                             "simulated cycles (default 250000); adds an "
                             "informational `timeline` block to the "
                             "artifact and, with --artifacts, a "
                             "<name>.timeline.json side file")
    parser.add_argument("--requests", action="store_true",
                        dest="trace_requests",
                        help="trace every top-level ecall as a request "
                             "(repro.telemetry.requests); adds an "
                             "informational `requests` block to the "
                             "artifact and, with --artifacts, a "
                             "<name>.requests.json side file")


def _cmd_list(args) -> int:
    width = max(len(name) for name in REGISTRY)
    for name, spec in REGISTRY.items():
        gate = "gate" if spec.gate else "    "
        print(f"  {name:<{width}}  [{spec.kind:<8}] [{gate}] "
              f"tol={spec.tolerance:.1%}  {spec.title}")
    return 0


def _cmd_run(args) -> int:
    specs = resolve(args.benchmarks, all_benches=args.all_benches)
    results_path = None if args.no_results else DEFAULT_RESULTS_PATH
    run_benches(specs, baseline_dir=args.baseline_dir,
                artifacts_dir=args.artifacts,
                results_path=results_path,
                profile=not args.no_profile,
                record_dir=args.record_dir,
                timeline_interval=args.timeline_interval,
                trace_requests=args.trace_requests)
    print(f"wrote {len(specs)} baseline artifact(s) to "
          f"{args.baseline_dir}")
    return 0


def _cmd_check(args) -> int:
    specs = resolve(args.benchmarks, all_benches=args.all_benches)
    results = check_benches(specs, baseline_dir=args.baseline_dir,
                            artifacts_dir=args.artifacts,
                            profile=not args.no_profile,
                            record_dir=args.record_dir,
                            timeline_interval=args.timeline_interval,
                            trace_requests=args.trace_requests)
    if args.json:
        print(json.dumps([r.as_dict() for r in results], indent=2))
    else:
        print(compare_report(results, verbose=args.verbose))
    return 0 if all(r.ok for r in results) else 1


def _cmd_report(args) -> int:
    artifacts = []
    for item in args.artifacts or []:
        path = pathlib.Path(item)
        if not path.exists():
            # Accept bench names too: resolve into the baseline dir.
            (spec,) = resolve([item])
            path = artifact_path(args.baseline_dir, spec.name)
        artifacts.append(load_artifact(path))
    if not artifacts:
        artifacts = [load_artifact(artifact_path(args.baseline_dir,
                                                 spec.name))
                     for spec in resolve(None)
                     if artifact_path(args.baseline_dir,
                                      spec.name).exists()]
    if not artifacts:
        print(f"no artifacts found under {args.baseline_dir}",
              file=sys.stderr)
        return 2
    if args.format == "markdown":
        print(report_all_markdown(artifacts))
    else:
        print(report_all(artifacts))
    return 0


def _cmd_diff(args) -> int:
    baseline = load_artifact(args.base)
    current = load_artifact(args.current)
    result = compare_artifacts(baseline, current)
    print(compare_report([result], verbose=args.verbose))
    base_profile = baseline.get("profile")
    cur_profile = current.get("profile")
    if base_profile and cur_profile:
        base_frames = {f["stack"]: f for f in base_profile["top_self"]}
        cur_frames = {f["stack"]: f for f in cur_profile["top_self"]}
        moved = []
        for stack in sorted(set(base_frames) | set(cur_frames)):
            b = base_frames.get(stack, {}).get("self_cycles", 0)
            c = cur_frames.get(stack, {}).get("self_cycles", 0)
            if b != c:
                moved.append((abs(c - b), c - b, stack, b, c))
        if moved:
            print("\ntop profile frame deltas (self cycles):")
            for _, delta, stack, b, c in sorted(moved, reverse=True)[:args.top]:
                print(f"  {delta:>+14,}  {stack}  ({b:,} -> {c:,})")
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="benchmark runner + regression gate over BENCH_*.json "
                    "baselines")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="show the benchmark registry")
    p.set_defaults(fn=_cmd_list)

    p = sub.add_parser("run", help="run benchmarks and write baselines")
    _add_selection(p)
    p.add_argument("--no-results", action="store_true",
                   help="do not update benchmarks/results.json")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("check",
                       help="re-run and gate against committed baselines "
                            "(exit 1 on regression)")
    _add_selection(p)
    p.add_argument("--json", action="store_true",
                   help="machine-readable gate report")
    p.add_argument("--verbose", action="store_true",
                   help="show every compared metric, not just failures")
    p.set_defaults(fn=_cmd_check)

    p = sub.add_parser("report",
                       help="render artifact digests: throughput, "
                            "per-enclave latency percentiles, cycles")
    p.add_argument("artifacts", nargs="*", metavar="NAME-or-PATH",
                   help="bench names or artifact paths (default: the "
                        "committed gate-set baselines)")
    p.add_argument("--baseline-dir", default=str(DEFAULT_BASELINE_DIR),
                   metavar="DIR",
                   help="where BENCH_<name>.json baselines live")
    p.add_argument("--format", choices=("text", "markdown"),
                   default="text",
                   help="digest format (markdown emits GitHub-flavored "
                        "tables)")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("diff", help="compare two BENCH_*.json artifacts")
    p.add_argument("base")
    p.add_argument("current")
    p.add_argument("--top", type=int, default=10, metavar="N")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=_cmd_diff)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (KeyError, OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
